#include "core/laas.hpp"

#include <algorithm>
#include <numeric>

#include "core/search.hpp"
#include "core/shape_table.hpp"

namespace jigsaw {

namespace {

/// Spine-index bundles available in tree t under `view`: bit j set when
/// the wire to spine j is available from *every* L2 switch of the tree.
/// Under whole-leaf operation bundles are claimed and released
/// atomically, so the live view's index read is exact.
Mask free_bundles(const LinkView& view, TreeId t) {
  return view.l2_up_all(t);
}

/// Lowest `count` fully-free leaves of tree t whose uplinks are all
/// available under `view` (whole-leaf grants need the uplinks too, which
/// free leaves always have under whole-leaf operation). The uplink check
/// stays for degraded trees, where a node-fully-free leaf can have
/// failed uplink wires.
std::vector<LeafId> free_leaves(const ClusterState& state,
                                const LinkView& view, TreeId t, int count) {
  std::vector<LeafId> out;
  const FatTree& topo = state.topo();
  const Mask all_up = low_bits(topo.l2_per_tree());
  Mask fully_free = state.fully_free_leaf_mask(t);
  while (fully_free != 0 && static_cast<int>(out.size()) < count) {
    const int li = lowest_bit(fully_free);
    fully_free &= fully_free - 1;
    const LeafId l = topo.leaf_id(t, li);
    if (view.leaf_up(l) == all_up) out.push_back(l);
  }
  if (static_cast<int>(out.size()) < count) out.clear();
  return out;
}

void take_whole_leaf(const ClusterState& state, LeafId l, Allocation* a) {
  const FatTree& topo = state.topo();
  for (int n = 0; n < topo.nodes_per_leaf(); ++n) {
    a->nodes.push_back(topo.node_id(l, n));
  }
  for (int i = 0; i < topo.l2_per_tree(); ++i) {
    a->leaf_wires.push_back(LeafWire{l, i});
  }
}

void take_bundles(const ClusterState& state, TreeId t, Mask bundles,
                  Allocation* a) {
  for (int i = 0; i < state.topo().l2_per_tree(); ++i) {
    for_each_bit(bundles,
                 [&](int j) { a->l2_wires.push_back(L2Wire{t, i, j}); });
  }
}

struct LaasCtx {
  const ClusterState* state;
  const LinkView* view;
  int per_tree;   ///< c: leaves per full subtree
  int full;       ///< q: full subtrees
  int remainder;  ///< cr: leaves in the remainder subtree
  std::vector<TreeId> cand;
  std::vector<Mask> cand_bundles;
  std::vector<TreeId> chosen;
  std::uint64_t* budget;
  Allocation* out;
  const AnytimeClock* clock = nullptr;
};

bool laas_complete(LaasCtx& ctx, Mask inter) {
  const FatTree& topo = ctx.state->topo();
  const Mask j_set = lowest_n_bits(inter, ctx.per_tree);
  Allocation staged = *ctx.out;  // header fields already populated
  for (const TreeId t : ctx.chosen) {
    for (const LeafId l : free_leaves(*ctx.state, *ctx.view, t,
                                      ctx.per_tree)) {
      take_whole_leaf(*ctx.state, l, &staged);
    }
    take_bundles(*ctx.state, t, j_set, &staged);
  }
  if (ctx.remainder > 0) {
    TreeId found = -1;
    Mask jr = 0;
    for (TreeId tr = 0; tr < topo.trees(); ++tr) {
      if (*ctx.budget == 0) return false;
      --*ctx.budget;
      if (anytime_interrupt(ctx.clock, *ctx.budget)) return false;
      if (std::find(ctx.chosen.begin(), ctx.chosen.end(), tr) !=
          ctx.chosen.end()) {
        continue;
      }
      const Mask b = free_bundles(*ctx.view, tr) & j_set;
      if (popcount(b) < ctx.remainder) continue;
      if (free_leaves(*ctx.state, *ctx.view, tr, ctx.remainder).empty()) {
        continue;
      }
      found = tr;
      jr = lowest_n_bits(b, ctx.remainder);
      break;
    }
    if (found < 0) return false;
    for (const LeafId l : free_leaves(*ctx.state, *ctx.view, found,
                                      ctx.remainder)) {
      take_whole_leaf(*ctx.state, l, &staged);
    }
    take_bundles(*ctx.state, found, jr, &staged);
  }
  *ctx.out = std::move(staged);
  return true;
}

bool laas_recurse(LaasCtx& ctx, std::size_t start, Mask inter) {
  if (*ctx.budget == 0) return false;
  --*ctx.budget;
  if (anytime_interrupt(ctx.clock, *ctx.budget)) return false;
  if (static_cast<int>(ctx.chosen.size()) == ctx.full) {
    return laas_complete(ctx, inter);
  }
  const std::size_t need =
      static_cast<std::size_t>(ctx.full) - ctx.chosen.size();
  for (std::size_t idx = start; idx + need <= ctx.cand.size(); ++idx) {
    const Mask next = inter & ctx.cand_bundles[idx];
    if (popcount(next) < ctx.per_tree) continue;
    ctx.chosen.push_back(ctx.cand[idx]);
    if (laas_recurse(ctx, idx + 1, next)) return true;
    ctx.chosen.pop_back();
    if (*ctx.budget == 0) return false;
  }
  return false;
}

}  // namespace

std::optional<Allocation> LaasAllocator::allocate(const ClusterState& state,
                                                  const JobRequest& request,
                                                  const AllocBudget& budget,
                                                  SearchStats* stats) const {
  const FatTree& topo = state.topo();
  if (request.nodes < 1 || request.nodes > topo.total_nodes()) {
    return std::nullopt;
  }
  const LinkView view{&state, 0.0};
  return search(state, view, exec_, request, budget, stats);
}

BlockedReason LaasAllocator::diagnose(const ClusterState& state,
                                      const JobRequest& request) const {
  const FatTree& topo = state.topo();
  if (request.nodes < 1 || request.nodes > topo.total_nodes()) {
    return BlockedReason::kOversized;
  }
  if (request.nodes > state.total_free_nodes()) {
    return BlockedReason::kNodeShortage;
  }
  // Same probe loop, links unconstrained, sequential: a placement found
  // here but not by allocate() was rejected by the link conditions.
  // LaaS's whole-leaf rounding constraints count as layout — they bind
  // identically under both views.
  const LinkView view = LinkView::links_unconstrained(&state);
  SearchStats stats;
  if (search(state, view, SearchExec{}, request, AllocBudget{}, &stats)
          .has_value()) {
    return BlockedReason::kUplinkIsolation;
  }
  if (stats.budget_exhausted) return BlockedReason::kBudgetExhausted;
  return BlockedReason::kLeafSpread;
}

bool LaasAllocator::quick_reject(const ClusterState& state,
                                 const JobRequest& request) const {
  if (Allocator::quick_reject(state, request)) return true;
  const FatTree& topo = state.topo();
  const int m1 = topo.nodes_per_leaf();
  const int n = request.nodes;
  // Necessity for the native two-level pass: the whole job sits inside
  // one subtree, so some subtree must hold n free nodes.
  int fully_free = 0;
  for (TreeId t = 0; t < topo.trees(); ++t) {
    if (state.tree_free_nodes(t) >= n) return false;
    fully_free += state.fully_free_leaves(t);
  }
  // Necessity for the whole-leaf reduction: the job is rounded up to
  // ceil(n / m1) entire leaves, so that many fully-free leaves must
  // exist cluster-wide.
  return fully_free < (n + m1 - 1) / m1;
}

std::optional<Allocation> LaasAllocator::search(const ClusterState& state,
                                               const LinkView& view,
                                               const SearchExec& exec,
                                               const JobRequest& request,
                                               const AllocBudget& latency,
                                               SearchStats* stats) const {
  const FatTree& topo = state.topo();
  const int m1 = topo.nodes_per_leaf();
  const int m2 = topo.leaves_per_tree();
  const int m3 = topo.trees();
  const int leaves_needed = (request.nodes + m1 - 1) / m1;  // R

  std::uint64_t budget = step_budget_;
  const AnytimeClock clock(latency);
  const bool anytime = clock.active();
  const AnytimeClock* scan_clock = anytime ? &clock : nullptr;
  auto record = [&](bool exhausted) {
    if (stats != nullptr) {
      stats->steps += step_budget_ - budget;
      stats->budget_exhausted = stats->budget_exhausted || exhausted;
      stats->anytime = stats->anytime || anytime;
      if (clock.ranked()) stats->slack_ns = clock.slack_ns();
    }
  };
  auto fold = [&](const CandidateScan& r) {
    if (stats != nullptr) {
      stats->probes += r.probes;
      stats->deadline_expired = stats->deadline_expired || r.expired;
    }
  };
  auto probe_clock = [&](std::size_t pos) -> const AnytimeClock* {
    return (anytime && pos > 0) ? &clock : nullptr;
  };

  // Single-subtree allocations first: LaaS's native two-level conditions
  // (shared with Jigsaw) place exact node counts — no rounding. Fullest
  // subtree first, keeping whole subtrees available for spanning jobs.
  std::vector<TreeId> tree_order(static_cast<std::size_t>(m3));
  std::iota(tree_order.begin(), tree_order.end(), 0);
  std::stable_sort(tree_order.begin(), tree_order.end(),
                   [&](TreeId a, TreeId b) {
                     return state.tree_free_nodes(a) <
                            state.tree_free_nodes(b);
                   });
  const std::size_t lanes = static_cast<std::size_t>(exec.lanes());
  const auto shapes2 = two_level_shape_seq(request.nodes, topo);
  const auto rank2 = clock.ranked()
                         ? two_level_ranked_seq(request.nodes, topo)
                         : ShapeSeq<std::uint32_t>({});
  {
    const std::size_t n_trees = tree_order.size();
    auto shape_at = [&](std::size_t pos) -> std::size_t {
      const std::size_t s = pos / n_trees;
      return clock.ranked() ? rank2[s] : s;
    };
    TwoLevelPick pick;
    std::vector<TwoLevelPick> lane_picks(lanes > 1 ? lanes : 0);
    auto pick_for = [&](int lane) -> TwoLevelPick& {
      return lane_picks.empty() ? pick
                                : lane_picks[static_cast<std::size_t>(lane)];
    };
    const CandidateScan r = scan_first_feasible(
        exec, shapes2.size() * n_trees, budget, scan_clock,
        [&](int lane, std::size_t pos, std::uint64_t& b) {
          return find_two_level(state, view, shapes2[shape_at(pos)],
                                tree_order[pos % n_trees], b, &pick_for(lane),
                                probe_clock(pos));
        });
    fold(r);
    if (r.winner >= 0) {
      record(false);
      const std::size_t w = static_cast<std::size_t>(r.winner);
      return materialize(state, shapes2[shape_at(w)], pick_for(r.winner_lane),
                         request.id, request.nodes, 0.0);
    }
    if (r.exhausted) {
      record(true);
      return std::nullopt;
    }
  }

  // Multi-subtree: spread R leaves evenly, densest decomposition first.
  // Candidate k is the leaf-spread width c = cmax - k; the width screens
  // cost no search steps, so they fold into the probe as step-free
  // rejections exactly as the old `continue`s did. The canonical width
  // order (widest c first — fewest subtrees touched) is already
  // quality-descending, so the anytime scan keeps the identity order.
  {
    const int cmax = std::min(leaves_needed, m2);
    Allocation seq_alloc;
    std::vector<Allocation> lane_allocs(lanes > 1 ? lanes : 0);
    auto alloc_for = [&](int lane) -> Allocation& {
      return lane_allocs.empty() ? seq_alloc
                                 : lane_allocs[static_cast<std::size_t>(lane)];
    };
    const CandidateScan r = scan_first_feasible(
        exec, cmax > 0 ? static_cast<std::size_t>(cmax) : 0, budget,
        scan_clock, [&](int lane, std::size_t k, std::uint64_t& b) {
          const int c = cmax - static_cast<int>(k);
          const int q = leaves_needed / c;
          const int cr = leaves_needed % c;
          if (q < 1 || q + (cr > 0 ? 1 : 0) < 2) return false;
          if (q + (cr > 0 ? 1 : 0) > m3) return false;

          LaasCtx ctx{&state, &view, c,  q,       cr,     {},
                      {},     {},    &b, nullptr, probe_clock(k)};
          for (TreeId t = 0; t < m3; ++t) {
            if (free_leaves(state, view, t, c).empty()) continue;
            const Mask bundles = free_bundles(view, t);
            if (popcount(bundles) < c) continue;
            ctx.cand.push_back(t);
            ctx.cand_bundles.push_back(bundles);
          }
          if (static_cast<int>(ctx.cand.size()) < q) return false;

          Allocation& a = alloc_for(lane);
          a.clear();
          a.job = request.id;
          a.requested_nodes = request.nodes;
          ctx.out = &a;
          return laas_recurse(ctx, 0, low_bits(topo.spines_per_group()));
        });
    fold(r);
    if (r.winner >= 0) {
      record(false);
      return std::move(alloc_for(r.winner_lane));
    }
    if (r.exhausted) {
      record(true);
      return std::nullopt;
    }
  }

  record(false);
  return std::nullopt;
}

}  // namespace jigsaw
