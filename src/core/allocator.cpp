#include "core/allocator.hpp"

namespace jigsaw {

const char* blocked_reason_name(BlockedReason reason) {
  switch (reason) {
    case BlockedReason::kNone:
      return "none";
    case BlockedReason::kOversized:
      return "oversized";
    case BlockedReason::kNodeShortage:
      return "node_shortage";
    case BlockedReason::kLeafSpread:
      return "leaf_spread";
    case BlockedReason::kUplinkIsolation:
      return "uplink_isolation";
    case BlockedReason::kBudgetExhausted:
      return "budget_exhausted";
  }
  return "none";
}

bool Allocator::quick_reject(const ClusterState& state,
                             const JobRequest& request) const {
  // Every scheme's placement claims `nodes` free healthy nodes (LaaS
  // claims even more, rounding up to whole leaves), so a shortage is a
  // certain failure for all of them.
  return request.nodes > state.total_free_nodes();
}

bool Allocator::size_unplaceable(const FatTree& topo, int nodes) const {
  return nodes < 1 || nodes > topo.total_nodes();
}

BlockedReason Allocator::diagnose(const ClusterState& state,
                                  const JobRequest& request) const {
  if (request.nodes < 1 || request.nodes > state.topo().total_nodes()) {
    return BlockedReason::kOversized;
  }
  if (request.nodes > state.total_free_nodes()) {
    return BlockedReason::kNodeShortage;
  }
  SearchStats stats;
  if (allocate(state, request, &stats).has_value()) {
    return BlockedReason::kNone;
  }
  if (stats.budget_exhausted) return BlockedReason::kBudgetExhausted;
  // Without a scheme-specific override we cannot distinguish the node
  // layout class from the link class; layout is the conservative default
  // (schemes with no link search, e.g. the first-fit baseline, never
  // reach here at all — they fail only on node shortage).
  return BlockedReason::kLeafSpread;
}

}  // namespace jigsaw
