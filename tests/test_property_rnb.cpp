// Property tests for the sufficiency theorem (Appendix A, Theorem 6):
// every allocation the condition-based allocators emit is rearrangeable
// non-blocking — every random permutation routes with one flow per link,
// confined to allocated links. Parameterized over seeds and schemes.

#include <gtest/gtest.h>

#include <memory>

#include "core/jigsaw_allocator.hpp"
#include "core/laas.hpp"
#include "core/lc.hpp"
#include "routing/rnb_router.hpp"
#include "util/rng.hpp"

namespace jigsaw {
namespace {

enum class Scheme { kJigsaw, kLaas, kLc };

AllocatorPtr make(Scheme scheme) {
  switch (scheme) {
    case Scheme::kJigsaw: return std::make_unique<JigsawAllocator>();
    case Scheme::kLaas: return std::make_unique<LaasAllocator>();
    case Scheme::kLc:
      return std::make_unique<LeastConstrainedAllocator>(false);
  }
  return nullptr;
}

class RnbProperty
    : public ::testing::TestWithParam<std::tuple<Scheme, int>> {};

TEST_P(RnbProperty, RandomWorkloadsProduceRnbPartitions) {
  const auto [scheme, seed] = GetParam();
  const AllocatorPtr allocator = make(scheme);
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  Rng rng(static_cast<std::uint64_t>(seed) * 1000003 + 7);

  std::vector<Allocation> live;
  for (JobId job = 0; job < 25; ++job) {
    const int size = 1 + static_cast<int>(rng.below(24));
    auto alloc = allocator->allocate(state, JobRequest{job, size, 0.0});
    if (!alloc.has_value()) {
      if (!live.empty()) {
        const std::size_t victim = rng.below(live.size());
        state.release(live[victim]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      }
      continue;
    }
    state.apply(*alloc);
    live.push_back(std::move(*alloc));

    // Each live partition must route 3 random permutations conflict-free.
    const Allocation& a = live.back();
    for (int round = 0; round < 3; ++round) {
      const auto perm = random_permutation(a, rng);
      const auto outcome = route_permutation(t, a, perm);
      ASSERT_TRUE(outcome.ok)
          << "scheme " << static_cast<int>(scheme) << " job " << job
          << " size " << size << ": " << outcome.error;
      const std::string violation =
          verify_one_flow_per_link(t, a, outcome.routes);
      ASSERT_TRUE(violation.empty()) << violation;
      // Every flow must actually be routed end-to-end.
      for (const auto& routed : outcome.routes) {
        if (routed.flow.src != routed.flow.dst) {
          ASSERT_GE(routed.links.size(), 2u);
        }
      }
    }
  }
  EXPECT_TRUE(state.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, RnbProperty,
    ::testing::Combine(::testing::Values(Scheme::kJigsaw, Scheme::kLaas,
                                         Scheme::kLc),
                       ::testing::Range(0, 12)));

class RnbLargerTree : public ::testing::TestWithParam<int> {};

TEST_P(RnbLargerTree, JigsawPartitionsOnRadix8) {
  const FatTree t = FatTree::from_radix(8);  // 256 nodes
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 99);
  for (JobId job = 0; job < 10; ++job) {
    const int size = 1 + static_cast<int>(rng.below(60));
    auto alloc = jigsaw.allocate(state, JobRequest{job, size, 0.0});
    if (!alloc.has_value()) continue;
    state.apply(*alloc);
    const auto perm = random_permutation(*alloc, rng);
    const auto outcome = route_permutation(t, *alloc, perm);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    ASSERT_TRUE(verify_one_flow_per_link(t, *alloc, outcome.routes).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RnbLargerTree, ::testing::Range(0, 6));

}  // namespace
}  // namespace jigsaw
