#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "test_helpers.hpp"

namespace jigsaw {
namespace {

using testing::must_allocate;

TEST(Baseline, TakesAnyFreeNodes) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const BaselineAllocator baseline;
  const Allocation a = must_allocate(baseline, state, 1, 10);
  EXPECT_EQ(a.allocated_nodes(), 10);
  EXPECT_TRUE(a.leaf_wires.empty());
  EXPECT_TRUE(a.l2_wires.empty());
}

TEST(Baseline, FirstFitAscending) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const BaselineAllocator baseline;
  const Allocation a = must_allocate(baseline, state, 1, 5);
  std::vector<NodeId> expected{0, 1, 2, 3, 4};
  std::vector<NodeId> got = a.nodes;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

TEST(Baseline, PacksFragmentedNodesOtherSchedulersCannot) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const BaselineAllocator baseline;
  // Use every leaf partially.
  for (LeafId l = 0; l < t.total_leaves(); ++l) {
    Allocation filler;
    filler.job = 100 + l;
    filler.requested_nodes = 3;
    filler.nodes = {t.node_id(l, 0), t.node_id(l, 1), t.node_id(l, 2)};
    state.apply(filler);
  }
  // 16 single-node holes; Baseline happily packs a 16-node job into them.
  const Allocation a = must_allocate(baseline, state, 1, 16);
  EXPECT_EQ(a.allocated_nodes(), 16);
  EXPECT_EQ(state.total_free_nodes(), 0);
}

TEST(Baseline, FailsOnlyWhenNodesShort) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const BaselineAllocator baseline;
  must_allocate(baseline, state, 1, 60);
  EXPECT_FALSE(baseline.allocate(state, JobRequest{2, 5, 0.0}).has_value());
  EXPECT_TRUE(baseline.allocate(state, JobRequest{3, 4, 0.0}).has_value());
}

TEST(Baseline, NotIsolating) {
  EXPECT_FALSE(BaselineAllocator().isolating());
}

}  // namespace
}  // namespace jigsaw
