// Online scheduler service: protocol semantics, backpressure, the golden
// equivalence of virtual-clock service runs against the batch simulator,
// and WAL crash recovery.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/jigsaw_allocator.hpp"
#include "obs/metrics_registry.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/reactor.hpp"
#include "service/wal.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace jigsaw::service {
namespace {

/// The trace the benches call Synth-16: named_synthetic plus the
/// deterministic bandwidth-class assignment (bench_common.hpp load()).
Trace synth16(std::size_t jobs) {
  Trace trace = named_synthetic("Synth-16", jobs);
  Rng rng(0xBADC0FFEEULL);
  assign_bandwidth_classes(trace, rng);
  return trace;
}

std::string submit_line(const Job& job) {
  std::string line = "{\"op\":\"submit\",\"id\":" + std::to_string(job.id) +
                     ",\"nodes\":" + std::to_string(job.nodes) +
                     ",\"runtime\":";
  append_double(line, job.runtime);
  line += ",\"bandwidth\":";
  append_double(line, job.bandwidth);
  line += ",\"arrival\":";
  append_double(line, job.arrival);
  line += "}";
  return line;
}

/// Extract the metrics object text from a drain reply — the daemon writes
/// it with metrics_json (a flat object, no nested braces), so the bytes
/// between "metrics": and the matching '}' compare bit-for-bit.
std::string metrics_text(const std::string& drain_reply) {
  const std::size_t key = drain_reply.find("\"metrics\":");
  if (key == std::string::npos) return {};
  const std::size_t open = drain_reply.find('{', key);
  const std::size_t close = drain_reply.find('}', open);
  if (open == std::string::npos || close == std::string::npos) return {};
  return drain_reply.substr(open, close - open + 1);
}

/// Drop the wall-clock-dependent fields (sched_wall_seconds,
/// mean_sched_time_per_job) before comparing metrics text: they measure
/// host time spent scheduling, which no two runs reproduce.
std::string scrub_wall_fields(std::string text) {
  for (const char* key :
       {"\"sched_wall_seconds\":", "\"mean_sched_time_per_job\":"}) {
    const std::size_t at = text.find(key);
    if (at == std::string::npos) continue;
    std::size_t end = text.find(',', at);
    if (end == std::string::npos) end = text.find('}', at);
    text.erase(at, end - at + 1);
  }
  return text;
}

bool has_error(const std::string& reply, const char* code) {
  return reply.find("\"ok\":false") != std::string::npos &&
         reply.find(std::string("\"error\":\"") + code + "\"") !=
             std::string::npos;
}

bool is_ok(const std::string& reply) {
  return reply.rfind("{\"ok\":true", 0) == 0;
}

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() : topo_(FatTree::from_radix(4)) {}

  /// A fresh virtual-clock daemon over the radix-4 tree (init asserted).
  std::unique_ptr<ServiceDaemon> make_daemon(DaemonOptions options = {}) {
    auto daemon =
        std::make_unique<ServiceDaemon>(topo_, allocator_, config_, options);
    std::string error;
    EXPECT_TRUE(daemon->init(&error)) << error;
    return daemon;
  }

  FatTree topo_;
  JigsawAllocator allocator_;
  SimConfig config_;
};

TEST_F(ServiceTest, PingAndSeqEcho) {
  auto daemon = make_daemon();
  EXPECT_TRUE(is_ok(daemon->handle_line("{\"op\":\"ping\"}")));
  const std::string reply =
      daemon->handle_line("{\"op\":\"ping\",\"seq\":42}");
  EXPECT_TRUE(is_ok(reply));
  EXPECT_NE(reply.find("\"seq\":42"), std::string::npos);
  // seq is echoed verbatim even on errors, and for non-numeric seq too.
  const std::string bad =
      daemon->handle_line("{\"op\":\"nope\",\"seq\":\"a-7\"}");
  EXPECT_TRUE(has_error(bad, "unknown_op"));
  EXPECT_NE(bad.find("\"seq\":\"a-7\""), std::string::npos);
}

TEST_F(ServiceTest, ParseAndRequestErrors) {
  auto daemon = make_daemon();
  EXPECT_TRUE(has_error(daemon->handle_line("this is not json"), "parse"));
  EXPECT_TRUE(has_error(daemon->handle_line("[1,2,3]"), "bad_request"));
  EXPECT_TRUE(has_error(daemon->handle_line("{\"nodes\":4}"), "bad_request"));
  EXPECT_TRUE(has_error(daemon->handle_line("{\"op\":\"warp\"}"),
                        "unknown_op"));
  EXPECT_TRUE(has_error(daemon->handle_line("{\"op\":\"submit\"}"),
                        "bad_request"));  // missing nodes/runtime
  EXPECT_TRUE(has_error(
      daemon->handle_line("{\"op\":\"submit\",\"nodes\":1.5,\"runtime\":9}"),
      "bad_request"));  // fractional nodes
  EXPECT_TRUE(has_error(
      daemon->handle_line("{\"op\":\"submit\",\"nodes\":2,\"runtime\":-1}"),
      "bad_request"));  // nonpositive runtime
  EXPECT_TRUE(has_error(daemon->handle_line("{\"op\":\"cancel\"}"),
                        "bad_request"));  // missing job
  EXPECT_TRUE(has_error(daemon->handle_line("{\"op\":\"fail\"}"),
                        "bad_request"));  // missing target
  EXPECT_TRUE(has_error(
      daemon->handle_line("{\"op\":\"fail\",\"target\":\"flux capacitor\"}"),
      "bad_request"));  // unparseable fault target
}

TEST_F(ServiceTest, SubmitLifecycle) {
  auto daemon = make_daemon();
  const std::string accepted = daemon->handle_line(
      "{\"op\":\"submit\",\"nodes\":2,\"runtime\":100}");
  ASSERT_TRUE(is_ok(accepted)) << accepted;
  EXPECT_NE(accepted.find("\"job\":0"), std::string::npos) << accepted;

  std::string status = daemon->handle_line("{\"op\":\"status\",\"job\":0}");
  EXPECT_TRUE(is_ok(status));
  EXPECT_NE(status.find("\"nodes\":2"), std::string::npos);

  EXPECT_TRUE(has_error(
      daemon->handle_line("{\"op\":\"status\",\"job\":99}"), "unknown_job"));
  EXPECT_TRUE(has_error(
      daemon->handle_line("{\"op\":\"cancel\",\"job\":99}"), "unknown_job"));

  // Duplicate client-chosen id: the engine refuses it.
  EXPECT_TRUE(has_error(
      daemon->handle_line(
          "{\"op\":\"submit\",\"id\":0,\"nodes\":2,\"runtime\":50}"),
      "bad_request"));

  EXPECT_TRUE(
      is_ok(daemon->handle_line("{\"op\":\"cancel\",\"job\":0}")));
  status = daemon->handle_line("{\"op\":\"status\",\"job\":0}");
  EXPECT_NE(status.find("\"phase\":\"cancelled\""), std::string::npos)
      << status;
  // Cancelling a cancelled job is a state error, not unknown_job.
  EXPECT_TRUE(has_error(
      daemon->handle_line("{\"op\":\"cancel\",\"job\":0}"), "bad_state"));
}

TEST_F(ServiceTest, MetricsOpRequiresARegistry) {
  auto daemon = make_daemon();
  EXPECT_TRUE(
      has_error(daemon->handle_line("{\"op\":\"metrics\"}"), "bad_state"));
  // Same listener over HTTP: 503, not a hang or a JSON parse error.
  const std::string http =
      daemon->http_metrics_response("GET /metrics HTTP/1.1");
  EXPECT_EQ(http.rfind("HTTP/1.0 503", 0), 0u) << http;
}

TEST_F(ServiceTest, MetricsOpServesPrometheusText) {
  obs::MetricsRegistry registry;
  config_.obs.metrics = &registry;
  auto daemon = make_daemon();
  ASSERT_TRUE(is_ok(daemon->handle_line(
      "{\"op\":\"submit\",\"nodes\":2,\"runtime\":100}")));

  const std::string reply = daemon->handle_line("{\"op\":\"metrics\"}");
  ASSERT_TRUE(is_ok(reply)) << reply;
  EXPECT_NE(reply.find("\"format\":\"prometheus\""), std::string::npos);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(parse_json(reply, &doc, &error)) << error;
  const JsonValue* body = doc.find("body");
  ASSERT_NE(body, nullptr);
  ASSERT_TRUE(body->is_string());
  const std::string& text = body->as_string();
  EXPECT_NE(text.find("# TYPE"), std::string::npos);
  EXPECT_NE(text.find("jigsaw_jobs_running "), std::string::npos);
  EXPECT_NE(text.find("jigsaw_queue_depth "), std::string::npos);
  EXPECT_NE(text.find("jigsaw_cluster_utilization "), std::string::npos);
  EXPECT_NE(text.find("jigsaw_service_ack_seconds_count"),
            std::string::npos);

  // HTTP variant: 200 with the Prometheus content type and the same
  // exposition; anything but /metrics is 404.
  const std::string http =
      daemon->http_metrics_response("GET /metrics HTTP/1.0");
  EXPECT_EQ(http.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << http;
  EXPECT_NE(http.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(http.find("jigsaw_jobs_running "), std::string::npos);
  const std::string missing =
      daemon->http_metrics_response("GET /other HTTP/1.0");
  EXPECT_EQ(missing.rfind("HTTP/1.0 404", 0), 0u) << missing;
}

TEST_F(ServiceTest, CorrelationIdsThreadSubmitToStatus) {
  auto daemon = make_daemon();
  const std::string first = daemon->handle_line(
      "{\"op\":\"submit\",\"nodes\":2,\"runtime\":100}");
  ASSERT_TRUE(is_ok(first)) << first;
  EXPECT_NE(first.find("\"corr\":1"), std::string::npos) << first;
  const std::string second = daemon->handle_line(
      "{\"op\":\"submit\",\"nodes\":2,\"runtime\":100}");
  EXPECT_NE(second.find("\"corr\":2"), std::string::npos) << second;
  // status carries the same id back, keyed by job.
  const std::string status =
      daemon->handle_line("{\"op\":\"status\",\"job\":0}");
  EXPECT_NE(status.find("\"corr\":1"), std::string::npos) << status;
}

TEST_F(ServiceTest, BackpressureRejections) {
  DaemonOptions options;
  options.max_queue = 2;
  auto daemon = make_daemon(options);
  const std::string oversized = daemon->handle_line(
      "{\"op\":\"submit\",\"nodes\":" +
      std::to_string(topo_.total_nodes() + 1) + ",\"runtime\":10}");
  EXPECT_TRUE(has_error(oversized, "oversized_job")) << oversized;

  EXPECT_TRUE(is_ok(
      daemon->handle_line("{\"op\":\"submit\",\"nodes\":1,\"runtime\":10}")));
  EXPECT_TRUE(is_ok(
      daemon->handle_line("{\"op\":\"submit\",\"nodes\":1,\"runtime\":10}")));
  EXPECT_TRUE(has_error(
      daemon->handle_line("{\"op\":\"submit\",\"nodes\":1,\"runtime\":10}"),
      "queue_full"));
  // Cancelling frees an admission slot.
  EXPECT_TRUE(is_ok(daemon->handle_line("{\"op\":\"cancel\",\"job\":0}")));
  EXPECT_TRUE(is_ok(
      daemon->handle_line("{\"op\":\"submit\",\"nodes\":1,\"runtime\":10}")));

  // Reactor overflow replies carry the protocol's error codes.
  EXPECT_TRUE(has_error(daemon->overflow_reply(true), "line_too_long"));
  EXPECT_TRUE(has_error(daemon->overflow_reply(false), "queue_full"));
}

TEST_F(ServiceTest, WallModeRefusesDrain) {
  DaemonOptions options;
  options.clock = ClockMode::kWall;
  auto daemon = make_daemon(options);
  EXPECT_TRUE(has_error(daemon->handle_line("{\"op\":\"drain\"}"),
                        "bad_state"));
}

TEST_F(ServiceTest, DrainIsIdempotentAndSealsSubmission) {
  auto daemon = make_daemon();
  EXPECT_TRUE(is_ok(
      daemon->handle_line("{\"op\":\"submit\",\"nodes\":2,\"runtime\":30}")));
  const std::string first = daemon->handle_line("{\"op\":\"drain\"}");
  ASSERT_TRUE(is_ok(first)) << first;
  EXPECT_TRUE(daemon->drained());
  // A second drain returns the cached metrics, byte for byte.
  EXPECT_EQ(daemon->handle_line("{\"op\":\"drain\"}"), first);
  EXPECT_TRUE(has_error(
      daemon->handle_line("{\"op\":\"submit\",\"nodes\":2,\"runtime\":30}"),
      "bad_state"));
}

TEST_F(ServiceTest, FaultOpsFeedTheEngine) {
  auto daemon = make_daemon();
  EXPECT_TRUE(is_ok(daemon->handle_line(
      "{\"op\":\"submit\",\"nodes\":2,\"runtime\":100,\"arrival\":0}")));
  EXPECT_TRUE(is_ok(daemon->handle_line(
      "{\"op\":\"fail\",\"target\":\"node 0\",\"time\":10}")));
  EXPECT_TRUE(is_ok(daemon->handle_line(
      "{\"op\":\"repair\",\"target\":\"node 0\",\"time\":20}")));
  EXPECT_TRUE(has_error(
      daemon->handle_line(
          "{\"op\":\"fail\",\"target\":\"node 99999\",\"time\":10}"),
      "bad_request"));  // target outside the topology
  const std::string drained = daemon->handle_line("{\"op\":\"drain\"}");
  ASSERT_TRUE(is_ok(drained)) << drained;
  EXPECT_NE(metrics_text(drained).find("\"fault_events\":2"),
            std::string::npos);
}

TEST_F(ServiceTest, ParseHelpers) {
  ClockMode clock = ClockMode::kWall;
  EXPECT_TRUE(parse_clock_mode("virtual", &clock));
  EXPECT_EQ(clock, ClockMode::kVirtual);
  EXPECT_TRUE(parse_clock_mode("wall", &clock));
  EXPECT_EQ(clock, ClockMode::kWall);
  EXPECT_FALSE(parse_clock_mode("sundial", &clock));
  SyncPolicy sync = SyncPolicy::kNone;
  EXPECT_TRUE(parse_sync_policy("always", &sync));
  EXPECT_EQ(sync, SyncPolicy::kAlways);
  EXPECT_TRUE(parse_sync_policy("batch", &sync));
  EXPECT_FALSE(parse_sync_policy("sometimes", &sync));
}

// ---------------------------------------------------------------------------
// Golden equivalence: Synth-16 replayed through the service in
// virtual-clock mode, over a real loopback socket, produces SimMetrics
// bit-identical (%.17g text) to the batch simulator — the service is the
// same simulation behind a protocol, not an approximation of it.
// ---------------------------------------------------------------------------

TEST(ServiceGolden, VirtualClockMatchesBatchSimulatorOverLoopback) {
  const Trace trace = synth16(800);
  const FatTree topo = FatTree::from_radix(16);
  const SimConfig config;

  JigsawAllocator batch_allocator;
  const SimMetrics reference = simulate(topo, batch_allocator, trace, config);

  JigsawAllocator service_allocator;
  DaemonOptions options;
  options.clock = ClockMode::kVirtual;
  options.max_queue = trace.jobs.size() + 1;
  ServiceDaemon daemon(topo, service_allocator, config, options);
  std::string error;
  ASSERT_TRUE(daemon.init(&error)) << error;

  Reactor reactor;
  ASSERT_TRUE(reactor.listen_tcp(0, &error)) << error;
  daemon.attach_reactor(&reactor);
  reactor.set_line_handler([&daemon](Reactor::ClientId, std::string&& line) {
    return daemon.handle_line(line);
  });
  reactor.set_overflow_handler([&daemon](Reactor::ClientId, bool oversized) {
    return daemon.overflow_reply(oversized);
  });
  reactor.set_idle_handler([&daemon]() { return daemon.on_idle(); });
  std::thread server([&reactor]() { reactor.run(); });

  ServiceClient client;
  ASSERT_TRUE(
      client.connect("tcp:" + std::to_string(reactor.port()), &error))
      << error;
  for (const Job& job : trace.jobs) {
    std::string reply;
    ASSERT_TRUE(client.request(submit_line(job), &reply, &error)) << error;
    ASSERT_TRUE(is_ok(reply)) << reply;
  }
  std::string drain_reply;
  ASSERT_TRUE(client.request("{\"op\":\"drain\"}", &drain_reply, &error))
      << error;
  ASSERT_TRUE(is_ok(drain_reply)) << drain_reply;
  std::string bye;
  ASSERT_TRUE(client.request("{\"op\":\"shutdown\"}", &bye, &error)) << error;
  server.join();

  const std::string service_metrics = metrics_text(drain_reply);
  ASSERT_FALSE(service_metrics.empty()) << drain_reply;
  EXPECT_EQ(scrub_wall_fields(service_metrics),
            scrub_wall_fields(metrics_json(reference)));
}

// ---------------------------------------------------------------------------
// Crash recovery: kill the daemon mid-drain (simulated by truncating the
// WAL inside the post-drain grant records — exactly the torn state a
// kill -9 leaves behind), restart with recover, and the run completes
// with metrics bit-identical to an uninterrupted daemon's. Recovering the
// same log twice is idempotent.
// ---------------------------------------------------------------------------

class ServiceRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // PID + test name, not an address: parallel ctest workers may map
    // the fixture at the same heap address in different processes.
    wal_path_ =
        ::testing::TempDir() + "service_recovery_" +
        std::to_string(::getpid()) + "_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ".wal";
    std::remove(wal_path_.c_str());
  }
  void TearDown() override { std::remove(wal_path_.c_str()); }

  std::string wal_path_;
};

TEST_F(ServiceRecoveryTest, MidDrainCrashRecoversBitIdentical) {
  const Trace trace = synth16(120);
  const FatTree topo = FatTree::from_radix(16);
  const SimConfig config;
  JigsawAllocator allocator;

  // Uninterrupted reference run (no WAL).
  std::string reference;
  {
    ServiceDaemon daemon(topo, allocator, config, DaemonOptions{});
    std::string error;
    ASSERT_TRUE(daemon.init(&error)) << error;
    for (const Job& job : trace.jobs) {
      ASSERT_TRUE(is_ok(daemon.handle_line(submit_line(job))));
    }
    reference = metrics_text(daemon.handle_line("{\"op\":\"drain\"}"));
    ASSERT_FALSE(reference.empty());
  }

  // The run that will "crash": same inputs, WAL on, drain completes so
  // the log holds submits + the drain marker + grant/release records.
  DaemonOptions wal_options;
  wal_options.wal_path = wal_path_;
  wal_options.sync = SyncPolicy::kAlways;
  {
    ServiceDaemon daemon(topo, allocator, config, wal_options);
    std::string error;
    ASSERT_TRUE(daemon.init(&error)) << error;
    for (const Job& job : trace.jobs) {
      ASSERT_TRUE(is_ok(daemon.handle_line(submit_line(job))));
    }
    ASSERT_TRUE(is_ok(daemon.handle_line("{\"op\":\"drain\"}")));
  }

  // Simulate the kill: truncate the log a few bytes into the frame after
  // the third grant record — all inputs and the drain marker survive, the
  // grant/release tail is torn mid-frame.
  const WalReadResult full = read_wal(wal_path_);
  ASSERT_TRUE(full.tail_error.empty()) << full.tail_error;
  std::vector<std::uint64_t> grant_offsets;
  for (const WalRecord& rec : full.records) {
    if (rec.type == WalRecordType::kGrant) grant_offsets.push_back(rec.offset);
  }
  ASSERT_GE(grant_offsets.size(), 4u);
  const std::uint64_t cut = grant_offsets[3] + 5;  // torn mid-frame
  {
    std::ifstream in(wal_path_, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(wal_path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
  }

  // Restart with recovery: replay finishes the drain and the cached
  // metrics match the uninterrupted run byte for byte.
  DaemonOptions recover_options = wal_options;
  recover_options.recover = true;
  {
    ServiceDaemon daemon(topo, allocator, config, recover_options);
    std::string error;
    ASSERT_TRUE(daemon.init(&error)) << error;
    const RecoveryReport& report = daemon.recovery();
    EXPECT_TRUE(report.performed);
    EXPECT_TRUE(report.audit_ok);
    EXPECT_TRUE(report.saw_drain);
    EXPECT_EQ(report.inputs_replayed, trace.jobs.size() + 1);  // + drain
    EXPECT_EQ(report.grants_logged, 3u);  // the 4th grant's frame was torn
    EXPECT_GT(report.dropped_bytes, 0u);  // the torn frame
    EXPECT_TRUE(daemon.drained());
    const std::string recovered =
        metrics_text(daemon.handle_line("{\"op\":\"drain\"}"));
    EXPECT_EQ(scrub_wall_fields(recovered), scrub_wall_fields(reference));
  }

  // Recovery appends nothing, so a second recovery sees the same log and
  // reaches the same state: idempotent.
  {
    ServiceDaemon daemon(topo, allocator, config, recover_options);
    std::string error;
    ASSERT_TRUE(daemon.init(&error)) << error;
    EXPECT_TRUE(daemon.recovery().audit_ok);
    EXPECT_EQ(daemon.recovery().dropped_bytes, 0u);  // tail already clean
    const std::string recovered =
        metrics_text(daemon.handle_line("{\"op\":\"drain\"}"));
    EXPECT_EQ(scrub_wall_fields(recovered), scrub_wall_fields(reference));
  }
}

TEST_F(ServiceRecoveryTest, RecoveryWithoutDrainRestoresAdmissionState) {
  const FatTree topo = FatTree::from_radix(4);
  const SimConfig config;
  JigsawAllocator allocator;
  DaemonOptions wal_options;
  wal_options.wal_path = wal_path_;
  wal_options.sync = SyncPolicy::kAlways;
  {
    ServiceDaemon daemon(topo, allocator, config, wal_options);
    std::string error;
    ASSERT_TRUE(daemon.init(&error)) << error;
    for (int k = 0; k < 3; ++k) {
      ASSERT_TRUE(is_ok(daemon.handle_line(
          "{\"op\":\"submit\",\"nodes\":1,\"runtime\":60}")));
    }
    ASSERT_TRUE(is_ok(daemon.handle_line("{\"op\":\"cancel\",\"job\":1}")));
  }
  DaemonOptions recover_options = wal_options;
  recover_options.recover = true;
  ServiceDaemon daemon(topo, allocator, config, recover_options);
  std::string error;
  ASSERT_TRUE(daemon.init(&error)) << error;
  EXPECT_FALSE(daemon.drained());
  EXPECT_EQ(daemon.engine().submitted_count(), 3u);
  EXPECT_EQ(daemon.engine().cancelled_count(), 1u);
  // The surviving jobs are known and new ids continue past the replayed
  // ones — a client reconnecting after the crash sees its world intact.
  EXPECT_TRUE(is_ok(daemon.handle_line("{\"op\":\"status\",\"job\":0}")));
  const std::string resumed = daemon.handle_line(
      "{\"op\":\"submit\",\"nodes\":1,\"runtime\":60}");
  ASSERT_TRUE(is_ok(resumed)) << resumed;
  EXPECT_NE(resumed.find("\"job\":3"), std::string::npos) << resumed;
}

// Wall-mode recovery must replay a cancel at the same point in the
// event stream it happened live: here the cancelled job sat at the head
// of the queue long enough for EASY to refuse a backfill on its behalf,
// so a replay that cancels it up front would derive different grants
// and fail the audit. Also pins the wall-epoch resume: after recovery
// the clock continues from the pre-crash event time instead of
// re-elapsing the whole uptime.
TEST_F(ServiceRecoveryTest, WallModeReplaysCancelAtItsAcceptClock) {
  const FatTree topo = FatTree::from_radix(4);  // 16 nodes
  const SimConfig config;
  JigsawAllocator allocator;
  DaemonOptions options;
  options.clock = ClockMode::kWall;
  options.time_scale = 2000.0;  // 1 event-clock hour ≈ 1.8 wall seconds
  options.wal_path = wal_path_;
  options.sync = SyncPolicy::kAlways;
  {
    ServiceDaemon daemon(topo, allocator, config, options);
    std::string error;
    ASSERT_TRUE(daemon.init(&error)) << error;
    // A runs on 4 nodes until t=4000. B wants the whole cluster: queued,
    // head of queue, shadow reservation at t=4000 over every node. C (1
    // node, runtime 20000) fits the idle capacity but would overrun the
    // shadow, so EASY keeps it queued *because B is queued*.
    ASSERT_TRUE(is_ok(daemon.handle_line(
        "{\"op\":\"submit\",\"nodes\":4,\"runtime\":4000}")));  // job 0 = A
    ASSERT_TRUE(is_ok(daemon.handle_line(
        "{\"op\":\"submit\",\"nodes\":16,\"runtime\":100}")));  // job 1 = B
    ASSERT_TRUE(is_ok(daemon.handle_line(
        "{\"op\":\"submit\",\"nodes\":1,\"runtime\":20000}")));  // job 2 = C
    ASSERT_TRUE(is_ok(daemon.handle_line("{\"op\":\"ping\"}")));
    ASSERT_LT(daemon.engine().now(), 4000.0);  // A still running
    ASSERT_EQ(daemon.engine().running_count(), 1u);  // A granted
    ASSERT_EQ(daemon.engine().queue_depth(), 2u);    // B and C held
    // Cancel B after its arrival was processed — it already shaped the
    // backfill decision above.
    ASSERT_TRUE(is_ok(daemon.handle_line("{\"op\":\"cancel\",\"job\":1}")));
    ASSERT_EQ(daemon.engine().queue_depth(), 1u);
    // Let wall time carry the engine past A's completion: the pass at
    // t=4000 releases A and finally grants C — both land in the WAL.
    for (int k = 0; k < 20000 && daemon.engine().now() < 4000.0; ++k) {
      ASSERT_TRUE(is_ok(daemon.handle_line("{\"op\":\"ping\"}")));
      ::usleep(1000);
    }
    ASSERT_GE(daemon.engine().now(), 4000.0);
    ASSERT_EQ(daemon.engine().completed_count(), 1u);  // A done
    ASSERT_EQ(daemon.engine().running_count(), 1u);    // C granted at 4000
  }  // crash: the daemon dies with C mid-flight

  DaemonOptions recover_options = options;
  recover_options.recover = true;
  ServiceDaemon daemon(topo, allocator, config, recover_options);
  std::string error;
  ASSERT_TRUE(daemon.init(&error)) << error;
  const RecoveryReport& report = daemon.recovery();
  EXPECT_TRUE(report.audit_ok);
  EXPECT_EQ(report.grants_logged, 2u);  // A at 0, C at 4000
  EXPECT_EQ(daemon.engine().cancelled_count(), 1u);
  EXPECT_EQ(daemon.engine().completed_count(), 1u);
  EXPECT_EQ(daemon.engine().running_count(), 1u);
  EXPECT_EQ(daemon.engine().queue_depth(), 0u);
  // The run resumes at the last audited grant/release time...
  EXPECT_GE(report.resume_clock, 4000.0);
  // ...and the wall epoch resumes there too: the next event (C's
  // completion at t=24000) is due in (24000 - resume)/scale wall
  // seconds, not a full re-elapse of the pre-crash uptime.
  const double next_due =
      (daemon.engine().next_time() - report.resume_clock) /
      options.time_scale;
  EXPECT_LE(daemon.on_idle(), next_due + 0.01);
}

TEST_F(ServiceRecoveryTest, TamperedGrantFailsTheAudit) {
  const FatTree topo = FatTree::from_radix(4);
  const SimConfig config;
  JigsawAllocator allocator;
  DaemonOptions wal_options;
  wal_options.wal_path = wal_path_;
  wal_options.sync = SyncPolicy::kAlways;
  {
    ServiceDaemon daemon(topo, allocator, config, wal_options);
    std::string error;
    ASSERT_TRUE(daemon.init(&error)) << error;
    ASSERT_TRUE(is_ok(daemon.handle_line(
        "{\"op\":\"submit\",\"nodes\":2,\"runtime\":60}")));
    ASSERT_TRUE(is_ok(daemon.handle_line("{\"op\":\"drain\"}")));
  }
  // Rewrite a grant's node count (through the writer so the CRC is
  // valid): replay re-derives the true grant, the log disagrees, and the
  // audit must refuse to serve from a log that contradicts replay.
  const WalReadResult full = read_wal(wal_path_);
  WalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.open(wal_path_ + ".tampered", &error)) << error;
  for (const WalRecord& rec : full.records) {
    std::string payload = rec.payload;
    if (rec.type == WalRecordType::kGrant) {
      const std::size_t at = payload.find("\"nodes\":");
      ASSERT_NE(at, std::string::npos);
      payload.insert(at + 8, "1");  // e.g. nodes 2 -> 12
    }
    ASSERT_TRUE(writer.append(rec.type, payload, &error)) << error;
  }
  writer.close();

  DaemonOptions recover_options = wal_options;
  recover_options.wal_path = wal_path_ + ".tampered";
  recover_options.recover = true;
  ServiceDaemon daemon(topo, allocator, config, recover_options);
  EXPECT_FALSE(daemon.init(&error));
  EXPECT_FALSE(daemon.recovery().audit_ok);
  EXPECT_FALSE(error.empty());
  std::remove((wal_path_ + ".tampered").c_str());
}

// ---------------------------------------------------------------------------
// Transport-level backpressure over a real socket.
// ---------------------------------------------------------------------------

TEST(ServiceReactor, OversizedLineGetsErrorAndConnectionSurvives) {
  const FatTree topo = FatTree::from_radix(4);
  const SimConfig config;
  JigsawAllocator allocator;
  ServiceDaemon daemon(topo, allocator, config, DaemonOptions{});
  std::string error;
  ASSERT_TRUE(daemon.init(&error)) << error;

  Reactor::Options reactor_options;
  reactor_options.max_line_bytes = 1024;
  Reactor reactor(reactor_options);
  ASSERT_TRUE(reactor.listen_tcp(0, &error)) << error;
  daemon.attach_reactor(&reactor);
  reactor.set_line_handler([&daemon](Reactor::ClientId, std::string&& line) {
    return daemon.handle_line(line);
  });
  reactor.set_overflow_handler([&daemon](Reactor::ClientId, bool oversized) {
    return daemon.overflow_reply(oversized);
  });
  std::thread server([&reactor]() { reactor.run(); });

  ServiceClient client;
  ASSERT_TRUE(
      client.connect("tcp:" + std::to_string(reactor.port()), &error))
      << error;
  std::string reply;
  ASSERT_TRUE(
      client.request("{\"op\":\"ping\",\"pad\":\"" + std::string(4096, 'x') +
                         "\"}",
                     &reply, &error))
      << error;
  EXPECT_TRUE(has_error(reply, "line_too_long")) << reply;
  // The oversized line was discarded, not the connection: a well-formed
  // request on the same socket still works.
  ASSERT_TRUE(client.request("{\"op\":\"ping\"}", &reply, &error)) << error;
  EXPECT_TRUE(is_ok(reply)) << reply;
  ASSERT_TRUE(client.request("{\"op\":\"shutdown\"}", &reply, &error))
      << error;
  server.join();
}

}  // namespace
}  // namespace jigsaw::service
