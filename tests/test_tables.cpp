#include <gtest/gtest.h>

#include <set>

#include "core/jigsaw_allocator.hpp"
#include "routing/dmodk.hpp"
#include "routing/partition_routing.hpp"
#include "routing/tables.hpp"
#include "util/rng.hpp"
#include "test_helpers.hpp"

namespace jigsaw {
namespace {

using testing::must_allocate;

TEST(ForwardingTables, WalkMatchesAnalyticDmodk) {
  const FatTree t(4, 4, 4);
  const ForwardingTables tables = build_dmodk_tables(t);
  Rng rng(3);
  for (int round = 0; round < 200; ++round) {
    const NodeId src = static_cast<NodeId>(rng.below(
        static_cast<std::uint64_t>(t.total_nodes())));
    const NodeId dst = static_cast<NodeId>(rng.below(
        static_cast<std::uint64_t>(t.total_nodes())));
    const WalkResult walked = walk(t, tables, src, dst);
    ASSERT_TRUE(walked.ok) << walked.error;
    EXPECT_EQ(walked.links, dmodk_route(t, src, dst))
        << "src " << src << " dst " << dst;
  }
}

TEST(ForwardingTables, AllPairsDeliverOnLargerTree) {
  const FatTree t = FatTree::from_radix(8);
  const ForwardingTables tables = build_dmodk_tables(t);
  Rng rng(4);
  for (int round = 0; round < 500; ++round) {
    const NodeId src = static_cast<NodeId>(rng.below(
        static_cast<std::uint64_t>(t.total_nodes())));
    const NodeId dst = static_cast<NodeId>(rng.below(
        static_cast<std::uint64_t>(t.total_nodes())));
    EXPECT_TRUE(walk(t, tables, src, dst).ok);
  }
}

TEST(ForwardingTables, PartitionOverridesConfineTraffic) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  must_allocate(jigsaw, state, 1, 5);  // perturb the layout
  const Allocation a = must_allocate(jigsaw, state, 2, 39);  // 3-level

  ForwardingTables tables = build_dmodk_tables(t);
  const std::size_t rewritten = apply_partition_overrides(t, a, &tables);
  EXPECT_GT(rewritten, 0u);

  std::set<int> allowed;
  for (const NodeId n : a.nodes) {
    allowed.insert(t.node_up_link(n));
    allowed.insert(t.node_down_link(n));
  }
  for (const LeafWire& w : a.leaf_wires) {
    allowed.insert(t.leaf_up_link(w.leaf, w.l2_index));
    allowed.insert(t.leaf_down_link(w.leaf, w.l2_index));
  }
  for (const L2Wire& w : a.l2_wires) {
    allowed.insert(t.l2_up_link(w.tree, w.l2_index, w.spine_index));
    allowed.insert(t.l2_down_link(w.tree, w.l2_index, w.spine_index));
  }
  for (const NodeId src : a.nodes) {
    for (const NodeId dst : a.nodes) {
      const WalkResult walked = walk(t, tables, src, dst);
      ASSERT_TRUE(walked.ok) << walked.error;
      for (const int link : walked.links) {
        EXPECT_TRUE(allowed.count(link))
            << src << "->" << dst << " escaped on " << t.link_name(link);
      }
    }
  }
}

TEST(ForwardingTables, OverridesMatchPartitionRouter) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  const Allocation a = must_allocate(jigsaw, state, 1, 23);
  ForwardingTables tables = build_dmodk_tables(t);
  apply_partition_overrides(t, a, &tables);
  const PartitionRouter router(t, a);
  for (const NodeId src : a.nodes) {
    for (const NodeId dst : a.nodes) {
      const WalkResult walked = walk(t, tables, src, dst);
      ASSERT_TRUE(walked.ok) << walked.error;
      EXPECT_EQ(walked.links, router.route(src, dst))
          << "src " << src << " dst " << dst;
    }
  }
}

TEST(ForwardingTables, ForeignTrafficUnaffectedByOverrides) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  const Allocation a = must_allocate(jigsaw, state, 1, 11);
  ForwardingTables tables = build_dmodk_tables(t);
  apply_partition_overrides(t, a, &tables);
  const std::set<NodeId> owned(a.nodes.begin(), a.nodes.end());
  for (NodeId src = 0; src < t.total_nodes(); ++src) {
    for (NodeId dst = 0; dst < t.total_nodes(); dst += 7) {
      if (owned.count(dst)) continue;  // only non-partition destinations
      EXPECT_EQ(walk(t, tables, src, dst).links, dmodk_route(t, src, dst));
    }
  }
}

TEST(ForwardingTables, WalkRejectsOutOfRange) {
  const FatTree t(4, 4, 4);
  const ForwardingTables tables = build_dmodk_tables(t);
  EXPECT_FALSE(walk(t, tables, -1, 0).ok);
  EXPECT_FALSE(walk(t, tables, 0, t.total_nodes()).ok);
}

TEST(ForwardingTables, SelfDeliveryIsEmpty) {
  const FatTree t(4, 4, 4);
  const ForwardingTables tables = build_dmodk_tables(t);
  const WalkResult walked = walk(t, tables, 5, 5);
  EXPECT_TRUE(walked.ok);
  EXPECT_TRUE(walked.links.empty());
}

}  // namespace
}  // namespace jigsaw
