// Fault subsystem: schedule parsing, target expansion, degraded
// ClusterState semantics, accounting invariants under random
// apply/fail/repair/release interleavings, and the simulator's
// failure-event integration with both victim policies.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "core/baseline.hpp"
#include "core/jigsaw_allocator.hpp"
#include "fault/failure_schedule.hpp"
#include "fault/injector.hpp"
#include "sim/simulator.hpp"
#include "topology/cluster_state.hpp"
#include "util/rng.hpp"

namespace jigsaw {
namespace {

using fault::FaultTarget;
using fault::ResourceKind;

Allocation tiny_alloc(const FatTree& t) {
  Allocation a;
  a.job = 1;
  a.requested_nodes = 3;
  a.nodes = {t.node_id(0, 0), t.node_id(0, 1), t.node_id(1, 0)};
  a.leaf_wires = {LeafWire{0, 0}, LeafWire{0, 2}, LeafWire{1, 0}};
  a.l2_wires = {L2Wire{0, 0, 1}};
  return a;
}

// ---- schedule parsing --------------------------------------------------

TEST(FailureSchedule, ParsesScriptSortedByTime) {
  const FatTree topo(4, 4, 4);
  std::istringstream script(
      "# outage drill\n"
      "200 repair node 5\n"
      "\n"
      "100 fail node 5    # comment after the event\n"
      "50 fail leafwire 2 3\n"
      "75 fail l2wire 1 2 3\n"
      "60 fail leafswitch 7\n"
      "65 fail l2switch 3 1\n"
      "70 fail spine 2 1\n");
  const fault::FailureSchedule s = fault::parse_schedule(script, topo);
  ASSERT_EQ(s.size(), 7u);
  for (std::size_t k = 1; k < s.events.size(); ++k) {
    EXPECT_LE(s.events[k - 1].time, s.events[k].time);
  }
  EXPECT_EQ(s.events.front().target,
            (FaultTarget{ResourceKind::kLeafWire, 2, 3, 0}));
  EXPECT_TRUE(s.events.front().failure);
  EXPECT_EQ(s.events.back().target, (FaultTarget{ResourceKind::kNode, 5, 0, 0}));
  EXPECT_FALSE(s.events.back().failure);
}

TEST(FailureSchedule, RejectsMalformedLinesWithLineNumber) {
  const FatTree topo(4, 4, 4);
  auto expect_error = [&](const std::string& text, const std::string& needle) {
    std::istringstream script(text);
    try {
      fault::parse_schedule(script, topo);
      FAIL() << "expected invalid_argument for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("oops fail node 1\n", "line 1");
  expect_error("10 explode node 1\n", "fail or repair");
  expect_error("10 fail gremlin 1\n", "unknown target kind");
  expect_error("10 fail node\n", "node takes 1");
  expect_error("\n10 fail node 9999\n", "line 2");
  expect_error("10 fail leafwire 0 99\n", "out of range");
}

TEST(FailureSchedule, DescribeAndValidate) {
  const FatTree topo(4, 4, 4);
  EXPECT_EQ(fault::describe(FaultTarget{ResourceKind::kNode, 17, 0, 0}),
            "node 17");
  EXPECT_EQ(fault::describe(FaultTarget{ResourceKind::kL2Wire, 0, 3, 1}),
            "l2wire 0/3/1");
  EXPECT_TRUE(
      fault::validate(topo, FaultTarget{ResourceKind::kNode, 63, 0, 0})
          .empty());
  EXPECT_FALSE(
      fault::validate(topo, FaultTarget{ResourceKind::kNode, 64, 0, 0})
          .empty());
  EXPECT_FALSE(
      fault::validate(topo, FaultTarget{ResourceKind::kSpine, 0, 4, 0})
          .empty());
}

TEST(FailureSchedule, RandomScheduleDeterministicAndPaired) {
  const FatTree topo = FatTree::from_radix(8);
  fault::RandomFaultConfig config;
  config.horizon = 50000.0;
  config.node_mtbf = 2000.0;
  config.wire_mtbf = 3000.0;
  config.mttr = 500.0;
  config.seed = 42;
  const fault::FailureSchedule a = fault::make_random_schedule(topo, config);
  const fault::FailureSchedule b = fault::make_random_schedule(topo, config);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GT(a.size(), 0u);
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a.events[k].time, b.events[k].time);
    EXPECT_EQ(a.events[k].target, b.events[k].target);
    EXPECT_EQ(a.events[k].failure, b.events[k].failure);
  }
  // Every failure is paired with a later repair of the same target.
  std::map<std::string, int> open;
  int failures = 0;
  for (const fault::FaultEvent& e : a.events) {
    if (e.failure) {
      ++failures;
      ++open[fault::describe(e.target)];
    } else {
      --open[fault::describe(e.target)];
    }
  }
  EXPECT_GT(failures, 0);
  for (const auto& [target, count] : open) EXPECT_EQ(count, 0) << target;

  config.seed = 43;
  const fault::FailureSchedule c = fault::make_random_schedule(topo, config);
  bool differs = c.size() != a.size();
  for (std::size_t k = 0; !differs && k < a.size(); ++k) {
    differs = !(a.events[k].target == c.events[k].target) ||
              a.events[k].time != c.events[k].time;
  }
  EXPECT_TRUE(differs);

  config.node_mtbf = 0.0;
  config.wire_mtbf = 0.0;
  EXPECT_TRUE(fault::make_random_schedule(topo, config).empty());
}

// ---- target expansion --------------------------------------------------

TEST(FaultInjector, ExpandsSwitchTargetsToPrimitives) {
  const FatTree topo(4, 4, 4);  // m1=4 nodes/leaf, w2=4, w3=4, 4 trees
  const auto leaf = fault::expand(
      topo, FaultTarget{ResourceKind::kLeafSwitch, 2, 0, 0});
  EXPECT_EQ(leaf.nodes.size(), 4u);
  EXPECT_EQ(leaf.leaf_wires.size(), 4u);
  EXPECT_EQ(leaf.l2_wires.size(), 0u);

  const auto l2 =
      fault::expand(topo, FaultTarget{ResourceKind::kL2Switch, 1, 2, 0});
  EXPECT_EQ(l2.nodes.size(), 0u);
  EXPECT_EQ(l2.leaf_wires.size(),
            static_cast<std::size_t>(topo.leaves_per_tree()));
  EXPECT_EQ(l2.l2_wires.size(),
            static_cast<std::size_t>(topo.spines_per_group()));
  for (const LeafWire& w : l2.leaf_wires) EXPECT_EQ(w.l2_index, 2);

  const auto spine =
      fault::expand(topo, FaultTarget{ResourceKind::kSpine, 1, 3, 0});
  EXPECT_EQ(spine.l2_wires.size(), static_cast<std::size_t>(topo.trees()));
  for (const L2Wire& w : spine.l2_wires) {
    EXPECT_EQ(w.l2_index, 1);
    EXPECT_EQ(w.spine_index, 3);
  }
}

// ---- degraded ClusterState semantics ----------------------------------

TEST(DegradedState, FailRemovesFreeCapacityRepairRestoresIt) {
  const FatTree t(4, 4, 4);
  ClusterState s(t);
  const std::uint64_t rev0 = s.revision();
  ASSERT_TRUE(s.fail_node(t.node_id(0, 0)));
  EXPECT_GT(s.revision(), rev0);
  EXPECT_EQ(s.total_free_nodes(), t.total_nodes() - 1);
  EXPECT_FALSE(s.node_healthy(t.node_id(0, 0)));
  EXPECT_FALSE(has_bit(s.free_nodes(0), 0));
  EXPECT_FALSE(s.leaf_fully_free(0));
  EXPECT_TRUE(s.degraded());
  EXPECT_EQ(s.failed_node_count(), 1);
  EXPECT_FALSE(s.fail_node(t.node_id(0, 0)));  // idempotent
  EXPECT_EQ(s.total_free_nodes(), t.total_nodes() - 1);
  EXPECT_TRUE(s.check_invariants());

  ASSERT_TRUE(s.repair_node(t.node_id(0, 0)));
  EXPECT_FALSE(s.repair_node(t.node_id(0, 0)));
  EXPECT_EQ(s.total_free_nodes(), t.total_nodes());
  EXPECT_FALSE(s.degraded());
  EXPECT_TRUE(s.check_invariants());
}

TEST(DegradedState, FailedWiresLeaveQueriesAndResiduals) {
  const FatTree t(4, 4, 4);
  ClusterState s(t);
  ASSERT_TRUE(s.fail_leaf_up(0, 1));
  ASSERT_TRUE(s.fail_l2_up(2, 3, 1));
  EXPECT_EQ(s.failed_wire_count(), 2);
  EXPECT_FALSE(has_bit(s.free_leaf_up(0), 1));
  EXPECT_FALSE(has_bit(s.free_l2_up(2, 3), 1));
  EXPECT_EQ(s.residual_leaf_up(0, 1), 0.0);
  EXPECT_EQ(s.residual_l2_up(2, 3, 1), 0.0);
  EXPECT_FALSE(has_bit(s.leaf_up_with_bandwidth(0, 0.5), 1));
  EXPECT_TRUE(s.check_invariants());
  ASSERT_TRUE(s.repair_leaf_up(0, 1));
  ASSERT_TRUE(s.repair_l2_up(2, 3, 1));
  EXPECT_FALSE(s.degraded());
  EXPECT_GT(s.residual_leaf_up(0, 1), 0.0);
}

TEST(DegradedState, FailWhileAllocatedNeverDoubleFrees) {
  const FatTree t(4, 4, 4);
  // Order 1: fail while allocated, release, then repair.
  {
    ClusterState s(t);
    const Allocation a = tiny_alloc(t);
    s.apply(a);
    ASSERT_TRUE(s.fail_node(t.node_id(0, 0)));
    ASSERT_TRUE(s.fail_leaf_up(0, 2));
    EXPECT_EQ(s.total_free_nodes(), t.total_nodes() - 3);  // all owned anyway
    EXPECT_TRUE(s.check_invariants());
    s.release(a);
    // The failed node's free bit returned but not its capacity.
    EXPECT_EQ(s.total_free_nodes(), t.total_nodes() - 1);
    EXPECT_FALSE(has_bit(s.free_nodes(0), 0));
    EXPECT_FALSE(has_bit(s.free_leaf_up(0), 2));
    EXPECT_TRUE(s.check_invariants());
    ASSERT_TRUE(s.repair_node(t.node_id(0, 0)));
    ASSERT_TRUE(s.repair_leaf_up(0, 2));
    EXPECT_EQ(s.total_free_nodes(), t.total_nodes());
    EXPECT_TRUE(s.check_invariants());
  }
  // Order 2: fail while allocated, repair while still allocated, release.
  {
    ClusterState s(t);
    const Allocation a = tiny_alloc(t);
    s.apply(a);
    ASSERT_TRUE(s.fail_node(t.node_id(0, 0)));
    ASSERT_TRUE(s.repair_node(t.node_id(0, 0)));
    EXPECT_EQ(s.total_free_nodes(), t.total_nodes() - 3);
    s.release(a);
    EXPECT_EQ(s.total_free_nodes(), t.total_nodes());
    EXPECT_TRUE(s.check_invariants());
  }
}

TEST(DegradedState, CanApplyPrechecksFreeHealthyAndBandwidth) {
  const FatTree t(4, 4, 4);
  ClusterState s(t);
  const Allocation a = tiny_alloc(t);
  EXPECT_TRUE(s.can_apply(a));
  s.apply(a);
  EXPECT_FALSE(s.can_apply(a));  // already owned
  ASSERT_TRUE(s.fail_node(t.node_id(0, 0)));
  s.release(a);
  EXPECT_FALSE(s.can_apply(a));  // node 0 still failed
  ASSERT_TRUE(s.repair_node(t.node_id(0, 0)));
  EXPECT_TRUE(s.can_apply(a));

  Allocation dup = a;
  dup.nodes.push_back(dup.nodes.front());
  EXPECT_FALSE(s.can_apply(dup));

  Allocation shared = a;
  shared.bandwidth = s.usable_bandwidth() + 1.0;  // more than any wire has
  EXPECT_FALSE(s.can_apply(shared));
  EXPECT_TRUE(s.check_invariants());
}

// ---- property test: random interleavings ------------------------------

TEST(DegradedState, RandomInterleavingsPreserveAccounting) {
  const FatTree topo = FatTree::from_radix(8);
  ClusterState state(topo);
  const BaselineAllocator allocator;
  Rng rng(0xFA017u);
  std::vector<Allocation> held;
  std::vector<FaultTarget> failed;
  JobId next_job = 1;

  for (int iter = 0; iter < 1200; ++iter) {
    const std::uint64_t op = rng.below(10);
    if (op < 4) {  // allocate
      const int size = static_cast<int>(1 + rng.below(24));
      const auto alloc =
          allocator.allocate(state, JobRequest{next_job, size, 0.0});
      if (alloc.has_value()) {
        // Grants never overlap failed hardware and always pass the
        // precheck that guards the simulator's apply.
        ASSERT_FALSE(fault::allocation_on_failed_hardware(state, *alloc));
        ASSERT_TRUE(state.can_apply(*alloc));
        state.apply(*alloc);
        held.push_back(*alloc);
        ++next_job;
      }
    } else if (op < 6) {  // release
      if (!held.empty()) {
        const std::size_t pick = rng.below(held.size());
        state.release(held[pick]);
        held[pick] = std::move(held.back());
        held.pop_back();
      }
    } else if (op < 8) {  // fail a random primitive
      FaultTarget target;
      const std::uint64_t kind = rng.below(3);
      if (kind == 0) {
        target = FaultTarget{
            ResourceKind::kNode,
            static_cast<std::int32_t>(rng.below(
                static_cast<std::uint64_t>(topo.total_nodes()))),
            0, 0};
      } else if (kind == 1) {
        target = FaultTarget{
            ResourceKind::kLeafWire,
            static_cast<std::int32_t>(rng.below(
                static_cast<std::uint64_t>(topo.total_leaves()))),
            static_cast<std::int32_t>(rng.below(
                static_cast<std::uint64_t>(topo.l2_per_tree()))),
            0};
      } else {
        target = FaultTarget{
            ResourceKind::kL2Wire,
            static_cast<std::int32_t>(
                rng.below(static_cast<std::uint64_t>(topo.trees()))),
            static_cast<std::int32_t>(rng.below(
                static_cast<std::uint64_t>(topo.l2_per_tree()))),
            static_cast<std::int32_t>(rng.below(
                static_cast<std::uint64_t>(topo.spines_per_group())))};
      }
      fault::apply_failure(state, fault::expand(topo, target));
      failed.push_back(target);
    } else {  // repair a random failed target
      if (!failed.empty()) {
        const std::size_t pick = rng.below(failed.size());
        fault::apply_repair(state, fault::expand(topo, failed[pick]));
        failed[pick] = failed.back();
        failed.pop_back();
      }
    }
    ASSERT_TRUE(state.check_invariants()) << "iteration " << iter;
    ASSERT_GE(state.total_free_nodes(), 0);
    ASSERT_LE(state.total_free_nodes(),
              topo.total_nodes() - state.failed_node_count());
  }

  // Drain: release everything and repair everything; the state must come
  // back to a pristine fully-free cluster (capacity restored exactly once).
  for (const Allocation& a : held) state.release(a);
  for (const FaultTarget& target : failed) {
    fault::apply_repair(state, fault::expand(topo, target));
  }
  EXPECT_TRUE(state.check_invariants());
  EXPECT_FALSE(state.degraded());
  EXPECT_EQ(state.total_free_nodes(), topo.total_nodes());
}

// ---- simulator integration ---------------------------------------------

Trace saturating_trace(int jobs, int nodes, double runtime) {
  Trace trace;
  trace.name = "fault-sim";
  for (int k = 0; k < jobs; ++k) {
    trace.jobs.push_back(
        Job{static_cast<JobId>(k), 0.0, nodes, runtime, 1.0});
  }
  normalize(trace);
  return trace;
}

TEST(FaultSimulator, KillAndRequeueRestartsVictimsAndFinishes) {
  const FatTree topo = FatTree::from_radix(8);  // 128 nodes
  const JigsawAllocator allocator;
  const Trace trace = saturating_trace(6, 32, 1000.0);  // 4 run, 2 queue

  fault::FailureSchedule schedule;
  schedule.add(500.0, true, FaultTarget{ResourceKind::kNode, 0, 0, 0});
  schedule.add(2500.0, false, FaultTarget{ResourceKind::kNode, 0, 0, 0});
  schedule.sort_by_time();

  SimConfig config;
  config.failures = &schedule;
  config.victim_policy = VictimPolicy::kKillAndRequeue;
  const SimMetrics m = simulate(topo, allocator, trace, config);
  // Node 0 is allocated at t=500 (the machine is full), so its owner dies
  // and restarts; every job still completes, no ghost double-counting.
  EXPECT_EQ(m.completed, 6u);
  EXPECT_EQ(m.abandoned, 0u);
  EXPECT_EQ(m.jobs_killed, 1u);
  EXPECT_EQ(m.jobs_requeued, 1u);
  EXPECT_EQ(m.fault_events, 2u);
  EXPECT_EQ(m.resources_failed, 1u);
  EXPECT_EQ(m.resources_repaired, 1u);
  // The victim lost 500s of work and restarted in the next wave alongside
  // the queued jobs; the run is at least as long as the pristine 2000s.
  EXPECT_GE(m.makespan, 2000.0);

  // Deterministic replay.
  const SimMetrics m2 = simulate(topo, allocator, trace, config);
  EXPECT_EQ(m2.makespan, m.makespan);
  EXPECT_EQ(m2.jobs_requeued, m.jobs_requeued);
  EXPECT_EQ(m2.steady_utilization, m.steady_utilization);
}

TEST(FaultSimulator, RunToCompletionDegradedKillsNothing) {
  const FatTree topo = FatTree::from_radix(8);
  const JigsawAllocator allocator;
  const Trace trace = saturating_trace(6, 32, 1000.0);

  fault::FailureSchedule schedule;
  schedule.add(500.0, true, FaultTarget{ResourceKind::kNode, 0, 0, 0});
  schedule.sort_by_time();

  SimConfig config;
  config.failures = &schedule;
  config.victim_policy = VictimPolicy::kRunToCompletionDegraded;
  const SimMetrics m = simulate(topo, allocator, trace, config);
  EXPECT_EQ(m.completed, 6u);
  EXPECT_EQ(m.jobs_killed, 0u);
  EXPECT_EQ(m.jobs_requeued, 0u);
  // The owner kept the failed node to completion; afterwards it stays out
  // of the pool, but 32-node jobs still fit on the surviving 127 nodes.
  EXPECT_EQ(m.abandoned, 0u);
}

TEST(FaultSimulator, UnplaceableJobIsAbandonedNotFatal) {
  const FatTree topo = FatTree::from_radix(8);
  const JigsawAllocator allocator;
  Trace trace;
  trace.name = "whale";
  trace.jobs = {Job{0, 10.0, topo.total_nodes(), 100.0, 1.0}};
  normalize(trace);

  fault::FailureSchedule schedule;  // permanent outage before arrival
  schedule.add(0.0, true, FaultTarget{ResourceKind::kNode, 3, 0, 0});
  schedule.sort_by_time();

  SimConfig config;
  config.failures = &schedule;
  const SimMetrics m = simulate(topo, allocator, trace, config);
  EXPECT_EQ(m.completed, 0u);
  EXPECT_EQ(m.abandoned, 1u);
}

TEST(FaultSimulator, GrantAuditSeesEveryPlacement) {
  const FatTree topo = FatTree::from_radix(8);
  const JigsawAllocator allocator;
  const Trace trace = saturating_trace(6, 32, 1000.0);

  fault::FailureSchedule schedule;
  schedule.add(500.0, true, FaultTarget{ResourceKind::kLeafSwitch, 0, 0, 0});
  schedule.sort_by_time();

  SimConfig config;
  config.failures = &schedule;
  std::size_t grants = 0;
  config.grant_audit = [&](double, const Allocation& a,
                           const ClusterState& state) {
    ++grants;
    EXPECT_FALSE(fault::allocation_on_failed_hardware(state, a));
  };
  const SimMetrics m = simulate(topo, allocator, trace, config);
  // 6 first placements plus one restart per victim of the dead leaf.
  EXPECT_EQ(grants, 6u + m.jobs_requeued);
  EXPECT_GE(m.jobs_requeued, 1u);
  EXPECT_EQ(m.completed, 6u);
}

}  // namespace
}  // namespace jigsaw
