#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/jigsaw_allocator.hpp"
#include "routing/fairshare.hpp"
#include "test_helpers.hpp"

namespace jigsaw {
namespace {

using testing::must_allocate;

TEST(MaxMinFair, SingleFlowGetsFullLink) {
  const auto rates = max_min_fair_rates({1.0, 1.0}, {{0, 1}});
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 1.0);
}

TEST(MaxMinFair, TwoFlowsShareEvenly) {
  const auto rates = max_min_fair_rates({1.0}, {{0}, {0}});
  EXPECT_DOUBLE_EQ(rates[0], 0.5);
  EXPECT_DOUBLE_EQ(rates[1], 0.5);
}

TEST(MaxMinFair, ClassicWaterfillingExample) {
  // Textbook instance: link 0 (cap 1) shared by flows A and B; link 1
  // (cap 10) used by flows B and C. A and B bottleneck at 0.5 on link 0;
  // C then takes the rest of link 1 (9.5).
  const auto rates = max_min_fair_rates({1.0, 10.0}, {{0}, {0, 1}, {1}});
  EXPECT_DOUBLE_EQ(rates[0], 0.5);
  EXPECT_DOUBLE_EQ(rates[1], 0.5);
  EXPECT_DOUBLE_EQ(rates[2], 9.5);
}

TEST(MaxMinFair, LinklessFlowRunsAtIdleRate) {
  const auto rates = max_min_fair_rates({1.0}, {{}, {0}}, 2.0);
  EXPECT_DOUBLE_EQ(rates[0], 2.0);
  EXPECT_DOUBLE_EQ(rates[1], 1.0);
}

TEST(MaxMinFair, RatesNeverExceedAnyLinkCapacity) {
  Rng rng(11);
  for (int round = 0; round < 20; ++round) {
    const std::size_t links = 4 + rng.below(8);
    const std::size_t flows = 1 + rng.below(20);
    std::vector<double> caps(links);
    for (auto& c : caps) c = rng.uniform(0.5, 4.0);
    std::vector<std::vector<int>> fl(flows);
    for (auto& f : fl) {
      const std::size_t hops = 1 + rng.below(4);
      for (std::size_t h = 0; h < hops; ++h) {
        f.push_back(static_cast<int>(rng.below(links)));
      }
    }
    const auto rates = max_min_fair_rates(caps, fl);
    // Conservation: per link, sum of rates <= capacity.
    std::vector<double> load(links, 0.0);
    for (std::size_t f = 0; f < flows; ++f) {
      auto unique_links = fl[f];
      std::sort(unique_links.begin(), unique_links.end());
      unique_links.erase(
          std::unique(unique_links.begin(), unique_links.end()),
          unique_links.end());
      for (const int l : unique_links) {
        load[static_cast<std::size_t>(l)] += rates[f];
      }
    }
    for (std::size_t l = 0; l < links; ++l) {
      EXPECT_LE(load[l], caps[l] + 1e-6);
    }
    // Max-min property (weak form): every flow is bottlenecked — some link
    // on its path is (nearly) saturated.
    for (std::size_t f = 0; f < flows; ++f) {
      bool bottlenecked = false;
      for (const int l : fl[f]) {
        if (load[static_cast<std::size_t>(l)] >=
            caps[static_cast<std::size_t>(l)] - 1e-6) {
          bottlenecked = true;
        }
      }
      EXPECT_TRUE(bottlenecked) << "flow " << f << " has slack everywhere";
    }
  }
}

TEST(MaxMinFair, OutOfRangeLinkThrows) {
  EXPECT_THROW(max_min_fair_rates({1.0}, {{2}}), std::invalid_argument);
}

TEST(MeasureSlowdowns, IsolatedJigsawJobsSufferOnlySelfContention) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  std::vector<Allocation> running;
  for (const int size : {11, 16, 20}) {
    running.push_back(must_allocate(
        jigsaw, state, static_cast<JobId>(running.size()), size));
  }
  Rng rng(5);
  const SlowdownReport report =
      measure_slowdowns(t, running, rng, TrafficRouting::kWraparound);
  // Deterministic single-path routing may still collide within a job, but
  // cross-job isolation bounds the damage: no flow shares with more than
  // its own job's flows.
  EXPECT_GE(report.mean_slowdown, 1.0);
  EXPECT_EQ(report.jobs.size(), 3u);
}

TEST(MeasureSlowdowns, SharedBaselineWorseThanIsolated) {
  const FatTree t(4, 4, 4);
  // Two interleaved jobs whose destination slots overlap (see the
  // congestion test for why this collides under D-mod-k).
  std::vector<Allocation> running(2);
  for (LeafId l = 0; l < 4; ++l) {
    running[0].nodes.push_back(t.node_id(l, 0));
    running[0].nodes.push_back(t.node_id(l, 1));
    running[1].nodes.push_back(t.node_id(l, 2));
    running[1].nodes.push_back(t.node_id(l, 3));
    running[1].nodes.push_back(t.node_id(l + 4, 0));
    running[1].nodes.push_back(t.node_id(l + 4, 1));
  }
  running[0].job = 0;
  running[1].job = 1;
  Rng rng(7);
  const SlowdownReport shared =
      measure_slowdowns(t, running, rng, TrafficRouting::kDmodk);
  EXPECT_GT(shared.max_slowdown, 1.0);
}

TEST(MeasureSlowdowns, RnbOptimalRoutingHasZeroContention) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  std::vector<Allocation> running;
  for (const int size : {11, 16, 20, 8}) {
    running.push_back(must_allocate(
        jigsaw, state, static_cast<JobId>(running.size()), size));
  }
  Rng rng(6);
  const SlowdownReport report =
      measure_slowdowns(t, running, rng, TrafficRouting::kRnbOptimal);
  EXPECT_DOUBLE_EQ(report.mean_slowdown, 1.0);
  EXPECT_DOUBLE_EQ(report.max_slowdown, 1.0);
  EXPECT_DOUBLE_EQ(report.fraction_slowed, 0.0);
}

TEST(MeasureSlowdowns, RnbOptimalRejectsIllegalAllocations) {
  const FatTree t(4, 4, 4);
  Allocation bad;
  bad.job = 1;
  bad.requested_nodes = 4;
  bad.nodes = {t.node_id(0, 0), t.node_id(0, 1), t.node_id(1, 0),
               t.node_id(1, 1)};
  bad.leaf_wires = {LeafWire{0, 0}, LeafWire{1, 1}};
  Rng rng(8);
  EXPECT_THROW(
      measure_slowdowns(t, {bad}, rng, TrafficRouting::kRnbOptimal),
      std::invalid_argument);
}

TEST(MeasureSlowdowns, EmptySystem) {
  const FatTree t(4, 4, 4);
  Rng rng(9);
  const SlowdownReport report = measure_slowdowns(t, {}, rng, TrafficRouting::kDmodk);
  EXPECT_TRUE(report.jobs.empty());
  EXPECT_DOUBLE_EQ(report.mean_slowdown, 1.0);
}

}  // namespace
}  // namespace jigsaw
