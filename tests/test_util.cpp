#include <gtest/gtest.h>

#include <set>

#include "util/bitset64.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace jigsaw {
namespace {

TEST(Bitset64, LowBits) {
  EXPECT_EQ(low_bits(0), 0u);
  EXPECT_EQ(low_bits(1), 0b1u);
  EXPECT_EQ(low_bits(4), 0b1111u);
  EXPECT_EQ(low_bits(64), ~Mask{0});
}

TEST(Bitset64, LowestNBits) {
  EXPECT_EQ(lowest_n_bits(0b101101, 0), 0u);
  EXPECT_EQ(lowest_n_bits(0b101101, 1), 0b000001u);
  EXPECT_EQ(lowest_n_bits(0b101101, 3), 0b001101u);
  EXPECT_EQ(lowest_n_bits(0b101101, 4), 0b101101u);
}

TEST(Bitset64, ForEachBitVisitsAscending) {
  std::vector<int> seen;
  for_each_bit(0b1010011, [&](int i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 4, 6}));
}

TEST(Bitset64, SubsetOf) {
  EXPECT_TRUE(subset_of(0b0101, 0b1101));
  EXPECT_FALSE(subset_of(0b0111, 0b1101));
  EXPECT_TRUE(subset_of(0, 0));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int k = 0; k < 100; ++k) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int k = 0; k < 64; ++k) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowIsInRangeAndCoversAll) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int k = 0; k < 1000; ++k) {
    const auto v = rng.below(5);
    ASSERT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int k = 0; k < n; ++k) sum += rng.exponential(16.0);
  EXPECT_NEAR(sum / n, 16.0, 0.3);
}

TEST(Rng, UniformBounds) {
  Rng rng(13);
  for (int k = 0; k < 1000; ++k) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Accumulator, BasicStatistics) {
  Accumulator acc;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
}

TEST(BoundedHistogram, BucketsMatchTable2Style) {
  // The Table 2 buckets: <=60, 60-80, 80-90, 90-95, 95-98, >=98.
  BoundedHistogram h({60, 80, 90, 95, 98});
  h.add(50);
  h.add(70);
  h.add(85);
  h.add(92);
  h.add(96);
  h.add(99);
  h.add(98);  // boundary lands in the top bucket
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.count(5), 2u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(BoundedHistogram, UnsortedBoundariesThrow) {
  EXPECT_THROW(BoundedHistogram({5, 3}), std::invalid_argument);
}

TEST(TablePrinter, RendersAlignedRows) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinter, RowWidthMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(CliFlags, ParsesValuesAndBooleans) {
  CliFlags flags;
  flags.define("jobs", "number of jobs", "100");
  flags.define_bool("full", "paper scale");
  const char* argv[] = {"prog", "--jobs", "250", "--full"};
  ASSERT_TRUE(flags.parse(4, const_cast<char**>(argv)));
  EXPECT_EQ(flags.integer("jobs"), 250);
  EXPECT_TRUE(flags.boolean("full"));
}

TEST(CliFlags, EqualsSyntaxAndDefaults) {
  CliFlags flags;
  flags.define("load", "offered load", "0.9");
  const char* argv[] = {"prog", "--load=1.25"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(argv)));
  EXPECT_DOUBLE_EQ(flags.real("load"), 1.25);
}

TEST(CliFlags, UnknownFlagThrows) {
  CliFlags flags;
  const char* argv[] = {"prog", "--nope"};
  EXPECT_THROW(flags.parse(2, const_cast<char**>(argv)),
               std::invalid_argument);
}

}  // namespace
}  // namespace jigsaw
