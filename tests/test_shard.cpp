// Sharded front-end: the static ownership map, cluster routing (unknown
// ids rejected, disjoint ownership), broadcast aggregation, golden
// equivalence of a sharded service against standalone per-cluster
// daemons, the threaded loopback path, and client timeouts against a
// peer that never replies.

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/jigsaw_allocator.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/protocol.hpp"
#include "service/reactor.hpp"
#include "service/shard.hpp"
#include "util/rng.hpp"

namespace jigsaw::service {
namespace {

bool is_ok(const std::string& reply) {
  return reply.rfind("{\"ok\":true", 0) == 0;
}

bool has_error(const std::string& reply, const char* code) {
  return reply.find("\"ok\":false") != std::string::npos &&
         reply.find(std::string("\"error\":\"") + code + "\"") !=
             std::string::npos;
}

std::string scrub_wall_fields(std::string text) {
  for (const char* key :
       {"\"sched_wall_seconds\":", "\"mean_sched_time_per_job\":"}) {
    const std::size_t at = text.find(key);
    if (at == std::string::npos) continue;
    std::size_t end = text.find(',', at);
    if (end == std::string::npos) end = text.find('}', at);
    text.erase(at, end - at + 1);
  }
  return text;
}

std::string metrics_text(const std::string& drain_reply) {
  const std::size_t key = drain_reply.find("\"metrics\":");
  if (key == std::string::npos) return {};
  const std::size_t open = drain_reply.find('{', key);
  const std::size_t close = drain_reply.find('}', open);
  if (open == std::string::npos || close == std::string::npos) return {};
  return drain_reply.substr(open, close - open + 1);
}

/// The per-cluster metrics objects of a sharded drain reply, in cluster
/// order. metrics_json objects are flat, so a naive brace scan works.
std::vector<std::string> metrics_array(const std::string& drain_reply) {
  std::vector<std::string> parts;
  const std::size_t key = drain_reply.find("\"metrics\":[");
  if (key == std::string::npos) return parts;
  std::size_t at = key + 11;
  while (true) {
    const std::size_t open = drain_reply.find('{', at);
    if (open == std::string::npos) break;
    const std::size_t close = drain_reply.find('}', open);
    if (close == std::string::npos) break;
    parts.push_back(drain_reply.substr(open, close - open + 1));
    at = close + 1;
    if (at >= drain_reply.size() || drain_reply[at] != ',') break;
  }
  return parts;
}

/// Deterministic submit lines (no cluster field) over the radix-4 tree,
/// ids preassigned so a striped replay matches standalone references.
std::vector<std::string> workload(std::size_t count) {
  Rng rng(0x57A6CAFEULL);
  std::vector<std::string> lines;
  double arrival = 0.0;
  for (std::size_t k = 0; k < count; ++k) {
    arrival += rng.uniform(0.0, 40.0);
    const int nodes = 1 + static_cast<int>(rng.uniform(0.0, 6.0));
    const double runtime = rng.uniform(30.0, 900.0);
    std::string line = "{\"op\":\"submit\",\"id\":" + std::to_string(k) +
                       ",\"nodes\":" + std::to_string(nodes) +
                       ",\"runtime\":";
    append_double(line, runtime);
    line += ",\"arrival\":";
    append_double(line, arrival);
    line += "}";
    lines.push_back(std::move(line));
  }
  return lines;
}

std::string with_cluster(std::string line, int cluster) {
  line.insert(1, "\"cluster\":" + std::to_string(cluster) + ",");
  return line;
}

// ---------------------------------------------------------------------------
// Ownership map.
// ---------------------------------------------------------------------------

TEST(ShardSet, OwnershipIsDisjointAndComplete) {
  const FatTree topo = FatTree::from_radix(4);
  const SimConfig config;
  JigsawAllocator allocator;
  ShardOptions options;
  options.clusters = 5;
  options.shards = 2;
  ShardSet set(topo, {&allocator}, config, options);
  std::string error;
  ASSERT_TRUE(set.init(&error)) << error;
  ASSERT_EQ(set.clusters(), 5);
  ASSERT_EQ(set.shards(), 2);

  // owner() partitions the clusters: every cluster has exactly one owner
  // in range, and every shard owns at least one cluster (5 over 2).
  std::vector<int> owned(2, 0);
  for (int c = 0; c < set.clusters(); ++c) {
    const int o = set.owner(c);
    ASSERT_GE(o, 0);
    ASSERT_LT(o, set.shards());
    EXPECT_EQ(o, c % 2);  // the documented static map
    ++owned[static_cast<std::size_t>(o)];
  }
  EXPECT_EQ(owned[0] + owned[1], 5);
  EXPECT_GT(owned[0], 0);
  EXPECT_GT(owned[1], 0);
}

TEST(ShardSet, ShardsClampToClusterCount) {
  const FatTree topo = FatTree::from_radix(4);
  const SimConfig config;
  JigsawAllocator allocator;
  ShardOptions options;
  options.clusters = 2;
  options.shards = 8;  // more threads than clusters would idle forever
  ShardSet set(topo, {&allocator}, config, options);
  std::string error;
  ASSERT_TRUE(set.init(&error)) << error;
  EXPECT_EQ(set.shards(), 2);
}

// ---------------------------------------------------------------------------
// Routing (inline mode: synchronous, deterministic).
// ---------------------------------------------------------------------------

TEST(ShardSet, UnknownClusterIsRejected) {
  const FatTree topo = FatTree::from_radix(4);
  const SimConfig config;
  JigsawAllocator allocator;
  ShardOptions options;
  options.clusters = 2;
  ShardSet set(topo, {&allocator}, config, options);
  std::string error;
  ASSERT_TRUE(set.init(&error)) << error;

  const std::string bad = set.handle_line(
      "{\"cluster\":7,\"op\":\"submit\",\"nodes\":1,\"runtime\":10}");
  EXPECT_TRUE(has_error(bad, "bad_request")) << bad;
  EXPECT_NE(bad.find("unknown cluster 7"), std::string::npos) << bad;
  EXPECT_NE(bad.find("clusters 0..1"), std::string::npos) << bad;
  // The boundary id is out of range too (clusters are 0-based).
  EXPECT_TRUE(has_error(
      set.handle_line("{\"cluster\":2,\"op\":\"ping\"}"), "bad_request"));

  // In-range clusters serve; ping reports the shape.
  const std::string ping = set.handle_line("{\"op\":\"ping\"}");
  EXPECT_TRUE(is_ok(ping)) << ping;
  EXPECT_NE(ping.find("\"clusters\":2"), std::string::npos) << ping;
  EXPECT_NE(ping.find("\"shards\":1"), std::string::npos) << ping;
  EXPECT_TRUE(is_ok(set.handle_line(
      "{\"cluster\":1,\"op\":\"submit\",\"nodes\":1,\"runtime\":10}")));
}

TEST(ShardSet, ClustersHaveIndependentJobIdSpaces) {
  const FatTree topo = FatTree::from_radix(4);
  const SimConfig config;
  JigsawAllocator allocator;
  ShardOptions options;
  options.clusters = 2;
  ShardSet set(topo, {&allocator}, config, options);
  std::string error;
  ASSERT_TRUE(set.init(&error)) << error;

  // Both clusters assign job 0: their engines never see each other.
  const std::string a = set.handle_line(
      "{\"cluster\":0,\"op\":\"submit\",\"nodes\":1,\"runtime\":10}");
  const std::string b = set.handle_line(
      "{\"cluster\":1,\"op\":\"submit\",\"nodes\":1,\"runtime\":10}");
  ASSERT_TRUE(is_ok(a)) << a;
  ASSERT_TRUE(is_ok(b)) << b;
  EXPECT_NE(a.find("\"job\":0"), std::string::npos) << a;
  EXPECT_NE(b.find("\"job\":0"), std::string::npos) << b;
  // And a cluster-less status defaults to cluster 0, job 0 of which is
  // the first submit.
  EXPECT_TRUE(is_ok(set.handle_line("{\"op\":\"status\",\"job\":0}")));
}

// ---------------------------------------------------------------------------
// Golden equivalence: a striped sharded run drains to exactly the
// metrics of standalone per-cluster daemons fed the same subsets.
// ---------------------------------------------------------------------------

TEST(ShardSet, StripedDrainMatchesStandaloneDaemons) {
  const FatTree topo = FatTree::from_radix(4);
  const SimConfig config;
  JigsawAllocator allocator;
  const std::vector<std::string> lines = workload(40);
  const int kClusters = 2;

  // Standalone references, one daemon per stripe.
  std::vector<std::string> reference;
  for (int c = 0; c < kClusters; ++c) {
    ServiceDaemon daemon(topo, allocator, config, DaemonOptions{});
    std::string error;
    ASSERT_TRUE(daemon.init(&error)) << error;
    for (std::size_t k = static_cast<std::size_t>(c); k < lines.size();
         k += kClusters) {
      ASSERT_TRUE(is_ok(daemon.handle_line(lines[k])));
    }
    reference.push_back(scrub_wall_fields(
        metrics_text(daemon.handle_line("{\"op\":\"drain\"}"))));
    ASSERT_FALSE(reference.back().empty());
  }

  ShardOptions options;
  options.clusters = kClusters;
  ShardSet set(topo, {&allocator}, config, options);
  std::string error;
  ASSERT_TRUE(set.init(&error)) << error;
  for (std::size_t k = 0; k < lines.size(); ++k) {
    ASSERT_TRUE(is_ok(set.handle_line(
        with_cluster(lines[k], static_cast<int>(k) % kClusters))));
  }

  // Aggregate stats before the drain: headline counters are sums.
  const std::string stats = set.handle_line("{\"op\":\"stats\"}");
  ASSERT_TRUE(is_ok(stats)) << stats;
  EXPECT_NE(stats.find("\"submitted\":40"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"per_cluster\":["), std::string::npos) << stats;

  const std::string drained = set.handle_line("{\"op\":\"drain\"}");
  ASSERT_TRUE(is_ok(drained)) << drained;
  const std::vector<std::string> parts = metrics_array(drained);
  ASSERT_EQ(parts.size(), static_cast<std::size_t>(kClusters)) << drained;
  for (int c = 0; c < kClusters; ++c) {
    EXPECT_EQ(scrub_wall_fields(parts[static_cast<std::size_t>(c)]),
              reference[static_cast<std::size_t>(c)])
        << "cluster " << c;
  }
}

// ---------------------------------------------------------------------------
// Threaded path over a real loopback socket: routing, broadcast
// aggregation, and shutdown through the reactor + worker threads.
// ---------------------------------------------------------------------------

TEST(ShardSet, ThreadedLoopbackServesAllClusters) {
  const FatTree topo = FatTree::from_radix(4);
  const SimConfig config;
  // Per-cluster allocators, as the daemon binary provisions them.
  std::vector<JigsawAllocator> allocator_storage(4);
  std::vector<const Allocator*> allocators;
  for (const JigsawAllocator& a : allocator_storage) allocators.push_back(&a);

  ShardOptions options;
  options.clusters = 4;
  options.shards = 2;
  ShardSet set(topo, allocators, config, options);
  std::string error;
  ASSERT_TRUE(set.init(&error)) << error;

  Reactor reactor;
  ASSERT_TRUE(reactor.listen_tcp(0, &error)) << error;
  set.attach_reactor(&reactor);
  reactor.set_line_handler([&set](Reactor::ClientId id, std::string&& line) {
    return set.handle_socket_line(id, std::move(line));
  });
  reactor.set_overflow_handler([&set](Reactor::ClientId, bool oversized) {
    return set.overflow_reply(oversized);
  });
  reactor.set_idle_handler([&set]() { return set.on_idle(); });
  set.start();
  std::thread server([&reactor]() { reactor.run(); });

  ServiceClient client;
  client.set_timeout(30.0);  // a wedged routing bug fails, not hangs
  ASSERT_TRUE(
      client.connect("tcp:" + std::to_string(reactor.port()), &error))
      << error;

  std::string reply;
  ASSERT_TRUE(client.request("{\"op\":\"ping\"}", &reply, &error)) << error;
  EXPECT_NE(reply.find("\"clusters\":4"), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"shards\":2"), std::string::npos) << reply;

  // Three submits per cluster, round-robin, across both worker threads.
  for (int k = 0; k < 12; ++k) {
    const std::string req = with_cluster(
        "{\"op\":\"submit\",\"nodes\":1,\"runtime\":50}", k % 4);
    ASSERT_TRUE(client.request(req, &reply, &error)) << error;
    ASSERT_TRUE(is_ok(reply)) << reply;
  }
  ASSERT_TRUE(
      client.request("{\"cluster\":9,\"op\":\"ping\"}", &reply, &error))
      << error;
  EXPECT_TRUE(has_error(reply, "bad_request")) << reply;

  // Aggregate stats: 12 submitted across the set, seq echoed once.
  ASSERT_TRUE(
      client.request("{\"op\":\"stats\",\"seq\":77}", &reply, &error))
      << error;
  ASSERT_TRUE(is_ok(reply)) << reply;
  EXPECT_NE(reply.find("\"submitted\":12"), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"seq\":77"), std::string::npos) << reply;

  // Broadcast drain: one metrics object per cluster, each 3 jobs.
  ASSERT_TRUE(client.request("{\"op\":\"drain\"}", &reply, &error)) << error;
  ASSERT_TRUE(is_ok(reply)) << reply;
  const std::vector<std::string> parts = metrics_array(reply);
  ASSERT_EQ(parts.size(), 4u) << reply;
  for (const std::string& part : parts) {
    EXPECT_NE(part.find("\"completed\":3"), std::string::npos) << part;
  }

  ASSERT_TRUE(client.request("{\"op\":\"shutdown\"}", &reply, &error))
      << error;
  EXPECT_NE(reply.find("\"stopping\":true"), std::string::npos) << reply;
  server.join();
  set.stop();
}

// ---------------------------------------------------------------------------
// Client timeout: a peer that accepts but never replies turns into a
// clean error instead of a hang.
// ---------------------------------------------------------------------------

TEST(ServiceClientTimeout, SilentPeerTimesOutInsteadOfHanging) {
  // A listening socket whose backlog accepts the TCP handshake but whose
  // owner never reads or writes: exactly what a daemon that died between
  // accept and reply looks like to the client.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const int port = ntohs(addr.sin_port);

  ServiceClient client;
  client.set_timeout(0.2);
  EXPECT_EQ(client.timeout(), 0.2);
  std::string error;
  ASSERT_TRUE(client.connect("tcp:" + std::to_string(port), &error)) << error;
  std::string reply;
  EXPECT_FALSE(client.request("{\"op\":\"ping\"}", &reply, &error));
  EXPECT_NE(error.find("timed out"), std::string::npos) << error;

  // Turning the bound off again restores blocking semantics cheaply; just
  // assert the setter round-trips rather than hanging a test on it.
  client.set_timeout(0.0);
  EXPECT_EQ(client.timeout(), 0.0);
  ::close(listener);
}

}  // namespace
}  // namespace jigsaw::service
