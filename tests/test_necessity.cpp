// Necessity of the §3.2 conditions (Lemmas 1-6), exercised empirically:
// each Figure 1 violation admits a permutation that the exact exhaustive
// router proves unroutable within the allocation's links.

#include <gtest/gtest.h>

#include "routing/rnb_router.hpp"
#include "topology/fat_tree.hpp"

namespace jigsaw {
namespace {

void expect_unroutable(const FatTree& t, const Allocation& a,
                       const std::vector<Flow>& perm) {
  const auto outcome = route_permutation_exhaustive(t, a, perm);
  ASSERT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error, "exhausted") << "search gave up, not proven";
}

TEST(Necessity, TaperedUplinksForceSharing) {
  // Figure 1 (left): two 2-node leaves with only one uplink each. Both of
  // a leaf's senders must leave on the same wire.
  const FatTree t(4, 4, 4);
  Allocation a;
  a.job = 1;
  a.requested_nodes = 4;
  a.nodes = {t.node_id(0, 0), t.node_id(0, 1), t.node_id(1, 0),
             t.node_id(1, 1)};
  a.leaf_wires = {LeafWire{0, 0}, LeafWire{1, 0}};
  const std::vector<Flow> perm{{a.nodes[0], a.nodes[2]},
                               {a.nodes[1], a.nodes[3]},
                               {a.nodes[2], a.nodes[0]},
                               {a.nodes[3], a.nodes[1]}};
  expect_unroutable(t, a, perm);
}

TEST(Necessity, UnevenNodeDistributionForcesSharing) {
  // Figure 1 (center): leaves with 1, 2 and 3 nodes. Balanced per-leaf
  // links exist, but three flows into the big leaf collide on its wires.
  const FatTree t(4, 4, 4);
  Allocation a;
  a.job = 1;
  a.requested_nodes = 6;
  const LeafId big = 0;
  const LeafId mid = 1;
  const LeafId small = 2;
  for (int n = 0; n < 3; ++n) a.nodes.push_back(t.node_id(big, n));
  for (int n = 0; n < 2; ++n) a.nodes.push_back(t.node_id(mid, n));
  a.nodes.push_back(t.node_id(small, 0));
  for (int i = 0; i < 3; ++i) a.leaf_wires.push_back(LeafWire{big, i});
  for (int i = 0; i < 2; ++i) a.leaf_wires.push_back(LeafWire{mid, i});
  a.leaf_wires.push_back(LeafWire{small, 0});
  // big's 3 nodes -> mid's 2 + small's 1; they reply in kind.
  const std::vector<Flow> perm{
      {a.nodes[0], a.nodes[3]}, {a.nodes[1], a.nodes[4]},
      {a.nodes[2], a.nodes[5]}, {a.nodes[3], a.nodes[0]},
      {a.nodes[4], a.nodes[1]}, {a.nodes[5], a.nodes[2]}};
  expect_unroutable(t, a, perm);
}

TEST(Necessity, MismatchedL2SetsBreakConnectivity) {
  // Figure 1 (right): balanced uplinks chosen independently per leaf leave
  // no common L2 switch — a dead end at the top.
  const FatTree t(4, 4, 4);
  Allocation a;
  a.job = 1;
  a.requested_nodes = 4;
  a.nodes = {t.node_id(0, 0), t.node_id(0, 1), t.node_id(1, 0),
             t.node_id(1, 1)};
  a.leaf_wires = {LeafWire{0, 0}, LeafWire{0, 1},   // leaf 0: {0, 1}
                  LeafWire{1, 2}, LeafWire{1, 3}};  // leaf 1: {2, 3}
  const std::vector<Flow> perm{{a.nodes[0], a.nodes[2]},
                               {a.nodes[1], a.nodes[3]},
                               {a.nodes[2], a.nodes[0]},
                               {a.nodes[3], a.nodes[1]}};
  expect_unroutable(t, a, perm);
}

TEST(Necessity, PartialL2OverlapStillInsufficient) {
  // Only one shared L2 switch for two flows per direction.
  const FatTree t(4, 4, 4);
  Allocation a;
  a.job = 1;
  a.requested_nodes = 4;
  a.nodes = {t.node_id(0, 0), t.node_id(0, 1), t.node_id(1, 0),
             t.node_id(1, 1)};
  a.leaf_wires = {LeafWire{0, 0}, LeafWire{0, 1},   // {0, 1}
                  LeafWire{1, 1}, LeafWire{1, 2}};  // {1, 2}; common = {1}
  const std::vector<Flow> perm{{a.nodes[0], a.nodes[2]},
                               {a.nodes[1], a.nodes[3]},
                               {a.nodes[2], a.nodes[0]},
                               {a.nodes[3], a.nodes[1]}};
  expect_unroutable(t, a, perm);
}

TEST(Necessity, InconsistentSpineSetsBreakCrossTreeTraffic) {
  // Lemma 6: two subtrees whose (same-index) L2 switches connect to
  // disjoint spine subsets cannot exchange two simultaneous flows.
  const FatTree t(2, 3, 4);
  Allocation a;
  a.job = 1;
  a.requested_nodes = 4;
  const LeafId l0 = t.leaf_id(0, 0);
  const LeafId l1 = t.leaf_id(1, 0);
  a.nodes = {t.node_id(l0, 0), t.node_id(l0, 1), t.node_id(l1, 0),
             t.node_id(l1, 1)};
  a.leaf_wires = {LeafWire{l0, 0}, LeafWire{l0, 1}, LeafWire{l1, 0},
                  LeafWire{l1, 1}};
  // Tree 0's L2s reach spines {0,1}; tree 1's reach {2} only: at most one
  // spine path per L2 index pair, and disjoint at index 1.
  a.l2_wires = {L2Wire{0, 0, 0}, L2Wire{0, 1, 0},
                L2Wire{1, 0, 0}, L2Wire{1, 1, 1}};
  const std::vector<Flow> perm{{a.nodes[0], a.nodes[2]},
                               {a.nodes[1], a.nodes[3]},
                               {a.nodes[2], a.nodes[0]},
                               {a.nodes[3], a.nodes[1]}};
  expect_unroutable(t, a, perm);
}

TEST(Necessity, MissingSpineCapacityBetweenTrees) {
  // Lemma 2 flavor: four nodes per tree but only one spine wire each —
  // four cross-tree flows cannot fit through one spine.
  const FatTree t(2, 3, 4);
  Allocation a;
  a.job = 1;
  a.requested_nodes = 4;
  const LeafId l0 = t.leaf_id(0, 0);
  const LeafId l0b = t.leaf_id(0, 1);
  const LeafId l1 = t.leaf_id(1, 0);
  const LeafId l1b = t.leaf_id(1, 1);
  a.nodes = {t.node_id(l0, 0), t.node_id(l0b, 0), t.node_id(l1, 0),
             t.node_id(l1b, 0)};
  a.leaf_wires = {LeafWire{l0, 0}, LeafWire{l0b, 0}, LeafWire{l1, 0},
                  LeafWire{l1b, 0}};
  a.l2_wires = {L2Wire{0, 0, 0}, L2Wire{1, 0, 0}};  // one shared spine path
  const std::vector<Flow> perm{{a.nodes[0], a.nodes[2]},
                               {a.nodes[1], a.nodes[3]},
                               {a.nodes[2], a.nodes[0]},
                               {a.nodes[3], a.nodes[1]}};
  expect_unroutable(t, a, perm);
}

}  // namespace
}  // namespace jigsaw
