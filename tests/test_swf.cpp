#include <gtest/gtest.h>

#include <sstream>

#include "trace/swf.hpp"
#include "trace/synthetic.hpp"

namespace jigsaw {
namespace {

constexpr const char* kSample =
    "; Example SWF log\n"
    "; UnixStartTime: 0\n"
    "1 0 5 100 16 -1 -1 16 120 -1 1 1 1 1 1 -1 -1 -1\n"
    "2 50 0 200 8 -1 -1 8 240 -1 1 1 1 1 1 -1 -1 -1\n"
    "3 60 0 -1 4 -1 -1 4 60 -1 0 1 1 1 1 -1 -1 -1\n"  // invalid runtime
    "4 70 0 30 0 -1 -1 32 60 -1 1 1 1 1 1 -1 -1 -1\n";  // procs via request

TEST(Swf, ParsesJobsSkipsCommentsAndInvalid) {
  std::istringstream in(kSample);
  const Trace trace = read_swf(in, "sample", SwfOptions{});
  ASSERT_EQ(trace.jobs.size(), 3u);
  EXPECT_EQ(trace.jobs[0].nodes, 16);
  EXPECT_DOUBLE_EQ(trace.jobs[0].runtime, 100.0);
  EXPECT_DOUBLE_EQ(trace.jobs[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(trace.jobs[1].arrival, 50.0);
  EXPECT_EQ(trace.jobs[2].nodes, 32);  // fell back to requested procs
}

TEST(Swf, ProcsPerNodeConversion) {
  std::istringstream in(kSample);
  SwfOptions options;
  options.procs_per_node = 4;
  const Trace trace = read_swf(in, "sample", options);
  EXPECT_EQ(trace.jobs[0].nodes, 4);
  EXPECT_EQ(trace.jobs[1].nodes, 2);
}

TEST(Swf, ZeroArrivalsAndScaling) {
  {
    std::istringstream in(kSample);
    SwfOptions options;
    options.zero_arrivals = true;
    const Trace trace = read_swf(in, "sample", options);
    for (const Job& j : trace.jobs) EXPECT_DOUBLE_EQ(j.arrival, 0.0);
  }
  {
    std::istringstream in(kSample);
    SwfOptions options;
    options.arrival_scale = 0.5;  // the paper's Aug/Nov-Cab scaling
    const Trace trace = read_swf(in, "sample", options);
    EXPECT_DOUBLE_EQ(trace.jobs[1].arrival, 25.0);
  }
}

TEST(Swf, RoundTripThroughWriter) {
  const Trace original = named_synthetic("Synth-16", 50);
  std::ostringstream out;
  write_swf(out, original);
  std::istringstream in(out.str());
  const Trace parsed = read_swf(in, "roundtrip", SwfOptions{});
  ASSERT_EQ(parsed.jobs.size(), original.jobs.size());
  for (std::size_t k = 0; k < parsed.jobs.size(); ++k) {
    EXPECT_EQ(parsed.jobs[k].nodes, original.jobs[k].nodes);
    EXPECT_NEAR(parsed.jobs[k].runtime, original.jobs[k].runtime, 1e-6);
  }
}

TEST(Swf, MissingFileThrows) {
  EXPECT_THROW(read_swf_file("/nonexistent/file.swf", SwfOptions{}),
               std::runtime_error);
}

TEST(Swf, BadProcsPerNodeThrows) {
  std::istringstream in(kSample);
  SwfOptions options;
  options.procs_per_node = 0;
  EXPECT_THROW(read_swf(in, "sample", options), std::invalid_argument);
}

TEST(Swf, MalformedLineThrowsWithLineNumber) {
  std::istringstream in(
      "; comment\n"
      "1 0 5 100 16 -1 -1 16 120 -1 1 1 1 1 1 -1 -1 -1\n"
      "2 zero 0 200 8 -1 -1 8 240 -1 1 1 1 1 1 -1 -1 -1\n");
  try {
    read_swf(in, "bad", SwfOptions{});
    FAIL() << "expected SwfParseError";
  } catch (const SwfParseError& e) {
    EXPECT_EQ(e.line(), 3u);  // 1-based; the comment line counts
    EXPECT_NE(std::string(e.what()).find("bad:3:"), std::string::npos);
  }
}

TEST(Swf, ShortLineThrows) {
  std::istringstream in("1 0 5\n");
  EXPECT_THROW(read_swf(in, "short", SwfOptions{}), SwfParseError);
}

TEST(Swf, NonFiniteTimeThrows) {
  std::istringstream in("1 0 5 inf 16 -1 -1 16 120 -1 1 1 1 1 1 -1 -1 -1\n");
  EXPECT_THROW(read_swf(in, "inf", SwfOptions{}), SwfParseError);
}

TEST(Swf, NegativeSubmitThrowsUnlessArrivalsDiscarded) {
  const std::string line =
      "1 -5 0 100 16 -1 -1 16 120 -1 1 1 1 1 1 -1 -1 -1\n";
  {
    std::istringstream in(line);
    EXPECT_THROW(read_swf(in, "neg", SwfOptions{}), SwfParseError);
  }
  {
    std::istringstream in(line);
    SwfOptions options;
    options.zero_arrivals = true;  // arrivals discarded: the value is moot
    const Trace trace = read_swf(in, "neg", options);
    ASSERT_EQ(trace.jobs.size(), 1u);
    EXPECT_DOUBLE_EQ(trace.jobs[0].arrival, 0.0);
  }
}

TEST(Swf, ProcOverflowThrows) {
  std::istringstream in(
      "1 0 0 100 99999999999 -1 -1 -1 120 -1 1 1 1 1 1 -1 -1 -1\n");
  EXPECT_THROW(read_swf(in, "huge", SwfOptions{}), SwfParseError);
}

TEST(Swf, StrictModeRejectsInvalidJobs) {
  // Line 3 of kSample has runtime -1: skipped by default, an error when
  // skip_invalid is off — it must never reach the simulator as a job.
  std::istringstream in(kSample);
  SwfOptions options;
  options.skip_invalid = false;
  EXPECT_THROW(read_swf(in, "strict", options), SwfParseError);
}

TEST(Swf, LenientModeSkipsMalformedLines) {
  // Real archive files carry junk headers and stray text; strict=false
  // restores the old skip-silently behavior for every line-level error
  // that strict mode turns into SwfParseError.
  const std::string junk =
      "This archive was converted on 2006-01-01\n"          // prose header
      "1 0 5 100 16 -1 -1 16 120 -1 1 1 1 1 1 -1 -1 -1\n"   // good
      "2 zero 0 200 8 -1 -1 8 240 -1 1 1 1 1 1 -1 -1 -1\n"  // non-numeric
      "3 0 5 inf 16 -1 -1 16 120 -1 1 1 1 1 1 -1 -1 -1\n"   // non-finite
      "4 -5 0 100 16 -1 -1 16 120 -1 1 1 1 1 1 -1 -1 -1\n"  // negative submit
      "5 0 0 100 99999999999 -1 -1 -1 1 -1 1 1 1 1 1 -1\n"  // node overflow
      "6 50 0 200 8 -1 -1 8 240 -1 1 1 1 1 1 -1 -1 -1\n";   // good
  {
    std::istringstream in(junk);
    EXPECT_THROW(read_swf(in, "junk", SwfOptions{}), SwfParseError);
  }
  std::istringstream in(junk);
  SwfOptions options;
  options.strict = false;
  const Trace trace = read_swf(in, "junk", options);
  ASSERT_EQ(trace.jobs.size(), 2u);
  EXPECT_EQ(trace.jobs[0].nodes, 16);
  EXPECT_EQ(trace.jobs[1].nodes, 8);
}

TEST(Swf, BlankLinesAreIgnored) {
  std::istringstream in(
      "\n   \t\n1 0 5 100 16 -1 -1 16 120 -1 1 1 1 1 1 -1 -1 -1\n\n");
  const Trace trace = read_swf(in, "blank", SwfOptions{});
  EXPECT_EQ(trace.jobs.size(), 1u);
}

}  // namespace
}  // namespace jigsaw
