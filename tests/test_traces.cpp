#include <gtest/gtest.h>

#include <algorithm>

#include "trace/llnl_like.hpp"
#include "trace/synthetic.hpp"

namespace jigsaw {
namespace {

TEST(SyntheticTrace, MatchesTable1Shape) {
  const Trace trace = named_synthetic("Synth-16", 10000);
  const TraceStats stats = summarize(trace);
  EXPECT_EQ(stats.job_count, 10000u);
  EXPECT_LE(stats.max_nodes, 138);
  EXPECT_GE(stats.max_nodes, 60);  // the tail should be exercised
  EXPECT_GE(stats.min_runtime, 20.0);
  EXPECT_LE(stats.max_runtime, 3000.0);
  EXPECT_FALSE(stats.has_arrivals);  // all at time zero
  EXPECT_NEAR(stats.mean_nodes, 16.0, 2.0);
}

TEST(SyntheticTrace, AllThreeNamedVariants) {
  for (const auto& [name, mean, cap] :
       {std::tuple{"Synth-16", 16.0, 138}, std::tuple{"Synth-22", 22.0, 190},
        std::tuple{"Synth-28", 28.0, 241}}) {
    const Trace trace = named_synthetic(name, 4000);
    const TraceStats stats = summarize(trace);
    EXPECT_NEAR(stats.mean_nodes, mean, mean * 0.15) << name;
    EXPECT_LE(stats.max_nodes, cap) << name;
  }
  EXPECT_THROW(named_synthetic("Synth-99"), std::invalid_argument);
}

TEST(SyntheticTrace, DeterministicForSeed) {
  const Trace a = named_synthetic("Synth-16", 100);
  const Trace b = named_synthetic("Synth-16", 100);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t k = 0; k < a.jobs.size(); ++k) {
    EXPECT_EQ(a.jobs[k].nodes, b.jobs[k].nodes);
    EXPECT_EQ(a.jobs[k].runtime, b.jobs[k].runtime);
  }
}

TEST(ThunderLike, MatchesTable1) {
  const Trace trace = thunder_like(20000);
  const TraceStats stats = summarize(trace);
  EXPECT_EQ(trace.system_nodes, 1024);
  EXPECT_LE(stats.max_nodes, 965);
  EXPECT_GT(stats.max_nodes, 256);  // the large-job tail exists
  EXPECT_GE(stats.min_runtime, 1.0);
  EXPECT_LE(stats.max_runtime, 172362.0);
  EXPECT_FALSE(stats.has_arrivals);
}

TEST(AtlasLike, HasWholeMachineJobs) {
  const Trace trace = atlas_like(29700);
  const TraceStats stats = summarize(trace);
  EXPECT_EQ(trace.system_nodes, 1152);
  EXPECT_EQ(stats.max_nodes, 1024);
  int whole_machine = 0;
  for (const Job& j : trace.jobs) {
    if (j.nodes == 1024) ++whole_machine;
  }
  EXPECT_GE(whole_machine, 3);  // "several whole-machine job requests"
  EXPECT_FALSE(stats.has_arrivals);
}

TEST(CabLike, RetainsArrivalsAndLoad) {
  const Trace trace = cab_like("Sep", 5000);
  const TraceStats stats = summarize(trace);
  EXPECT_EQ(trace.system_nodes, 1296);
  EXPECT_TRUE(stats.has_arrivals);
  EXPECT_LE(stats.max_nodes, 256);
  // Offered load relative to the 1458-node simulation cluster should be
  // near the month's target (1.04 for September).
  double last_arrival = 0.0;
  for (const Job& j : trace.jobs) {
    last_arrival = std::max(last_arrival, j.arrival);
  }
  const double offered =
      stats.total_node_seconds / (1458.0 * last_arrival);
  EXPECT_NEAR(offered, 1.04, 0.2);
}

TEST(CabLike, AllFourMonths) {
  for (const char* month : {"Aug", "Sep", "Oct", "Nov"}) {
    const Trace trace = cab_like(month, 1000);
    EXPECT_EQ(trace.jobs.size(), 1000u) << month;
    EXPECT_EQ(trace.name, std::string(month) + "-Cab");
  }
  EXPECT_THROW(cab_like("Dec", 10), std::invalid_argument);
}

TEST(CabLike, ArrivalsSorted) {
  const Trace trace = cab_like("Oct", 2000);
  for (std::size_t k = 1; k < trace.jobs.size(); ++k) {
    EXPECT_LE(trace.jobs[k - 1].arrival, trace.jobs[k].arrival);
    EXPECT_EQ(trace.jobs[k].id, static_cast<JobId>(k));
  }
}

TEST(CabLike, DiurnalArrivalsAreNonUniform) {
  // Submission rates swing with the time of day: the busiest day-hour
  // bucket should see markedly more arrivals than the quietest.
  const Trace trace = cab_like("Sep", 20000);
  double last = 0.0;
  for (const Job& j : trace.jobs) last = std::max(last, j.arrival);
  ASSERT_GT(last, 86400.0);  // spans multiple days
  std::vector<int> by_hour(24, 0);
  for (const Job& j : trace.jobs) {
    const int hour = static_cast<int>(j.arrival / 3600.0) % 24;
    ++by_hour[static_cast<std::size_t>(hour)];
  }
  const auto [lo, hi] = std::minmax_element(by_hour.begin(), by_hour.end());
  // With a 0.6 swing the peak-to-trough rate ratio is 4:1; demand at
  // least 2:1 to stay robust to sampling noise.
  EXPECT_GT(*hi, 2 * *lo);
}

TEST(BandwidthClasses, AssignsPaperClasses) {
  Trace trace = named_synthetic("Synth-16", 2000);
  Rng rng(4);
  assign_bandwidth_classes(trace, rng);
  std::map<double, int> histogram;
  for (const Job& j : trace.jobs) ++histogram[j.bandwidth];
  ASSERT_EQ(histogram.size(), 4u);
  for (const double demand : {0.5, 1.0, 1.5, 2.0}) {
    EXPECT_GT(histogram[demand], 300);  // roughly uniform
  }
}

TEST(TraceSummary, EmptyTrace) {
  const TraceStats stats = summarize(Trace{});
  EXPECT_EQ(stats.job_count, 0u);
  EXPECT_EQ(stats.max_nodes, 0);
}

}  // namespace
}  // namespace jigsaw
