// Direct unit tests of the shared placement-search engine (core/search),
// exercising edge cases the allocator-level tests reach only indirectly.

#include <gtest/gtest.h>

#include "core/search.hpp"
#include "test_helpers.hpp"

namespace jigsaw {
namespace {

TEST(FindTwoLevel, SingleLeafShapeIgnoresLinks) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  // Exhaust every uplink of leaf 0; a single-leaf job must still place.
  Allocation wires;
  wires.job = 9;
  wires.requested_nodes = 0;
  for (int i = 0; i < 4; ++i) wires.leaf_wires.push_back(LeafWire{0, i});
  state.apply(wires);

  const LinkView view{&state, 0.0};
  const TwoLevelShape shape{1, 3, 0};
  std::uint64_t budget = 1000;
  TwoLevelPick pick;
  ASSERT_TRUE(find_two_level(state, view, shape, 0, budget, &pick));
  EXPECT_EQ(pick.s_set, 0u);
  EXPECT_EQ(pick.full_leaves.size(), 1u);
}

TEST(FindTwoLevel, RequiresCommonUplinks) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  // Leaf 0 keeps uplinks {0,1}; leaf 1 keeps {2,3}: a 2x2 job needs two
  // common uplinks and leaves 2, 3 of tree 0 are fully taken.
  Allocation blocker;
  blocker.job = 5;
  blocker.requested_nodes = 0;
  blocker.leaf_wires = {LeafWire{0, 2}, LeafWire{0, 3}, LeafWire{1, 0},
                        LeafWire{1, 1}};
  for (int n = 0; n < 4; ++n) {
    blocker.nodes.push_back(t.node_id(2, n));
    blocker.nodes.push_back(t.node_id(3, n));
  }
  state.apply(blocker);

  const LinkView view{&state, 0.0};
  const TwoLevelShape shape{2, 2, 0};
  std::uint64_t budget = 1000;
  TwoLevelPick pick;
  EXPECT_FALSE(find_two_level(state, view, shape, 0, budget, &pick));
  // A 2x1 job (one uplink needed) still fails: masks {0,1} and {2,3} have
  // empty intersection.
  const TwoLevelShape thin{2, 1, 0};
  budget = 1000;
  EXPECT_FALSE(find_two_level(state, view, thin, 0, budget, &pick));
}

TEST(FindTwoLevel, RemainderLeafMustShareS) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  // All four leaves free. Shape 2x3+2: remainder leaf needs 2 uplinks
  // inside the chosen S of size 3.
  const LinkView view{&state, 0.0};
  const TwoLevelShape shape{2, 3, 2};
  std::uint64_t budget = 1000;
  TwoLevelPick pick;
  ASSERT_TRUE(find_two_level(state, view, shape, 0, budget, &pick));
  EXPECT_EQ(popcount(pick.s_set), 3);
  EXPECT_EQ(popcount(pick.sr_set), 2);
  EXPECT_TRUE(subset_of(pick.sr_set, pick.s_set));
  EXPECT_NE(pick.remainder_leaf, -1);
  // The remainder leaf is not one of the full leaves.
  for (const LeafId l : pick.full_leaves) {
    EXPECT_NE(l, pick.remainder_leaf);
  }
}

TEST(FindTwoLevel, BudgetZeroFailsCleanly) {
  const FatTree t(4, 4, 4);
  const ClusterState state(t);
  const LinkView view{&state, 0.0};
  std::uint64_t budget = 0;
  TwoLevelPick pick;
  EXPECT_FALSE(find_two_level(state, view, TwoLevelShape{2, 2, 0}, 0, budget,
                              &pick));
  EXPECT_EQ(budget, 0u);
}

TEST(FindThreeLevel, RejectsNonWholeLeafShape) {
  const FatTree t(4, 4, 4);
  const ClusterState state(t);
  const LinkView view{&state, 0.0};
  std::uint64_t budget = 1000;
  ThreeLevelPick pick;
  const ThreeLevelShape bad{2, 2, 3, 0, 0};  // nL = 3 != m1
  EXPECT_THROW(
      find_three_level_full_leaves(state, view, bad, budget, &pick),
      std::invalid_argument);
}

TEST(FindThreeLevel, SpineIntersectionAcrossTrees) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  // Burn spine wires so tree 0's L2 0 keeps {0,1} and tree 1's keeps
  // {1,2}: a 2-tree x 2-leaf job needs |S*_0| = 2 common spines — only
  // {1} is common, so trees {0,1} cannot pair; the search must fall back
  // to other trees.
  Allocation blocker;
  blocker.job = 5;
  blocker.requested_nodes = 0;
  blocker.l2_wires = {L2Wire{0, 0, 2}, L2Wire{0, 0, 3}, L2Wire{1, 0, 0},
                      L2Wire{1, 0, 3}};
  state.apply(blocker);

  const LinkView view{&state, 0.0};
  const ThreeLevelShape shape{2, 2, 4, 0, 0};  // 2 trees x 2 full leaves
  std::uint64_t budget = 100000;
  ThreeLevelPick pick;
  ASSERT_TRUE(find_three_level_full_leaves(state, view, shape, budget, &pick));
  // Trees 0 and 1 cannot both appear (their L2-0 spine sets intersect in
  // only one wire but two are needed).
  const bool has0 = std::find(pick.full_trees.begin(), pick.full_trees.end(),
                              0) != pick.full_trees.end();
  const bool has1 = std::find(pick.full_trees.begin(), pick.full_trees.end(),
                              1) != pick.full_trees.end();
  EXPECT_FALSE(has0 && has1);
  for (const Mask star : pick.s_star) EXPECT_EQ(popcount(star), 2);
}

TEST(FindThreeLevel, RemainderTreeSpineSubsets) {
  const FatTree t(2, 3, 4);  // Figure 3's proportions
  const ClusterState state(t);
  const LinkView view{&state, 0.0};
  // N=11: T=2 trees x (2 leaves x 2 nodes), remainder tree with 1 full
  // leaf + 1-node remainder leaf.
  const ThreeLevelShape shape{2, 2, 2, 1, 1};
  std::uint64_t budget = 100000;
  ThreeLevelPick pick;
  ASSERT_TRUE(find_three_level_full_leaves(state, view, shape, budget, &pick));
  EXPECT_EQ(pick.full_trees.size(), 2u);
  EXPECT_NE(pick.remainder_tree, -1);
  EXPECT_EQ(pick.rem_full_leaves.size(), 1u);
  EXPECT_NE(pick.remainder_leaf, -1);
  EXPECT_EQ(popcount(pick.sr_set), 1);
  for (int i = 0; i < t.l2_per_tree(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(popcount(pick.s_star[idx]), 2);  // LT
    const int expected_rem = 1 + (has_bit(pick.sr_set, i) ? 1 : 0);
    EXPECT_EQ(popcount(pick.s_star_rem[idx]), expected_rem);
    EXPECT_TRUE(subset_of(pick.s_star_rem[idx], pick.s_star[idx]));
  }
}

TEST(PickFreeNodes, TakesLowestFreeAndThrowsWhenShort) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  Allocation filler;
  filler.job = 1;
  filler.requested_nodes = 2;
  filler.nodes = {t.node_id(0, 0), t.node_id(0, 2)};
  state.apply(filler);
  const auto nodes = pick_free_nodes(state, 0, 2);
  EXPECT_EQ(nodes, (std::vector<NodeId>{t.node_id(0, 1), t.node_id(0, 3)}));
  EXPECT_THROW(pick_free_nodes(state, 0, 3), std::logic_error);
}

TEST(LinkView, BandwidthViewFiltersThinWires) {
  const FatTree t(4, 4, 4);
  ClusterState state(t, 4.0);
  Allocation shared;
  shared.job = 1;
  shared.requested_nodes = 1;
  shared.nodes = {t.node_id(0, 0)};
  shared.leaf_wires = {LeafWire{0, 0}};
  shared.bandwidth = 3.5;
  state.apply(shared);
  const LinkView thin{&state, 1.0};
  const LinkView thick{&state, 0.25};
  EXPECT_EQ(thin.leaf_up(0), low_bits(4) & ~Mask{1});
  EXPECT_EQ(thick.leaf_up(0), low_bits(4));
  EXPECT_FALSE(thin.leaf_fully_available(0));  // node 0 is taken anyway
}

}  // namespace
}  // namespace jigsaw
