#include <gtest/gtest.h>

#include "core/conditions.hpp"

namespace jigsaw {
namespace {

// Figure 3's legal allocation on a (2 nodes/leaf, 3 leaves/tree) fat-tree:
// N=11 as two full trees (2 leaves x 2 nodes) plus a remainder tree with
// one full leaf and a one-node remainder leaf. S = {0, 1}, Sr = {0};
// S*_i = {0, 1}; S*r_0 = {0, 1} (full leaf + remainder leaf through L2 0),
// S*r_1 = {0} (full leaf only).
Allocation figure3_allocation(const FatTree& t) {
  Allocation a;
  a.job = 7;
  a.requested_nodes = 11;
  for (const TreeId tree : {0, 1}) {
    for (int leaf = 0; leaf < 2; ++leaf) {
      const LeafId l = t.leaf_id(tree, leaf);
      a.nodes.push_back(t.node_id(l, 0));
      a.nodes.push_back(t.node_id(l, 1));
      a.leaf_wires.push_back(LeafWire{l, 0});
      a.leaf_wires.push_back(LeafWire{l, 1});
    }
    for (int i = 0; i < 2; ++i) {
      a.l2_wires.push_back(L2Wire{tree, i, 0});
      a.l2_wires.push_back(L2Wire{tree, i, 1});
    }
  }
  // Remainder tree 2: one full leaf, one remainder leaf with one node.
  const LeafId full = t.leaf_id(2, 0);
  a.nodes.push_back(t.node_id(full, 0));
  a.nodes.push_back(t.node_id(full, 1));
  a.leaf_wires.push_back(LeafWire{full, 0});
  a.leaf_wires.push_back(LeafWire{full, 1});
  const LeafId rem = t.leaf_id(2, 1);
  a.nodes.push_back(t.node_id(rem, 0));
  a.leaf_wires.push_back(LeafWire{rem, 0});  // Sr = {0}
  a.l2_wires.push_back(L2Wire{2, 0, 0});
  a.l2_wires.push_back(L2Wire{2, 0, 1});  // L2 0 serves full + remainder leaf
  a.l2_wires.push_back(L2Wire{2, 1, 0});  // L2 1 serves the full leaf only
  return a;
}

TEST(Conditions, Figure3AllocationIsLegal) {
  const FatTree t(2, 3, 4);
  const Allocation a = figure3_allocation(t);
  const auto report = check_full_bandwidth(t, a);
  EXPECT_TRUE(report.ok) << report.error;
  const auto util = check_high_utilization(t, a);
  EXPECT_TRUE(util.ok) << util.error;
}

TEST(Conditions, EmptyAllocationFails) {
  const FatTree t(2, 3, 4);
  EXPECT_FALSE(check_full_bandwidth(t, Allocation{}).ok);
}

TEST(Conditions, DuplicateNodeFails) {
  const FatTree t(2, 3, 4);
  Allocation a = figure3_allocation(t);
  a.nodes.push_back(a.nodes.front());
  EXPECT_FALSE(check_full_bandwidth(t, a).ok);
}

TEST(Conditions, TwoRemainderLeavesFail) {
  // Figure 1 (center): 1, 2, 3 nodes across three leaves is not evenly
  // distributed — two different non-maximal leaf counts.
  const FatTree t(4, 4, 4);
  Allocation a;
  a.job = 1;
  a.requested_nodes = 6;
  for (int n = 0; n < 1; ++n) a.nodes.push_back(t.node_id(0, n));
  for (int n = 0; n < 2; ++n) a.nodes.push_back(t.node_id(1, n));
  for (int n = 0; n < 3; ++n) a.nodes.push_back(t.node_id(2, n));
  for (const LeafId l : {0, 1, 2}) {
    for (int i = 0; i < 3; ++i) a.leaf_wires.push_back(LeafWire{l, i});
  }
  const auto report = check_full_bandwidth(t, a);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("remainder leaf"), std::string::npos);
}

TEST(Conditions, TaperedUplinksFail) {
  // Figure 1 (left): fewer uplinks than downlinks on a leaf.
  const FatTree t(4, 4, 4);
  Allocation a;
  a.job = 1;
  a.requested_nodes = 4;
  for (int n = 0; n < 2; ++n) a.nodes.push_back(t.node_id(0, n));
  for (int n = 0; n < 2; ++n) a.nodes.push_back(t.node_id(1, n));
  a.leaf_wires = {LeafWire{0, 0}, LeafWire{0, 1}, LeafWire{1, 0}};  // 1 short
  const auto report = check_full_bandwidth(t, a);
  EXPECT_FALSE(report.ok);
}

TEST(Conditions, MismatchedL2SetsFail) {
  // Figure 1 (right): balanced but independently-chosen uplinks.
  const FatTree t(4, 4, 4);
  Allocation a;
  a.job = 1;
  a.requested_nodes = 4;
  for (int n = 0; n < 2; ++n) a.nodes.push_back(t.node_id(0, n));
  for (int n = 0; n < 2; ++n) a.nodes.push_back(t.node_id(1, n));
  a.leaf_wires = {LeafWire{0, 0}, LeafWire{0, 1},   // S = {0, 1}
                  LeafWire{1, 2}, LeafWire{1, 3}};  // S = {2, 3}
  const auto report = check_full_bandwidth(t, a);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("condition 4"), std::string::npos);
}

TEST(Conditions, RemainderLeafOutsideRemainderTreeFails) {
  const FatTree t(2, 3, 4);
  Allocation a = figure3_allocation(t);
  // Move the remainder node from tree 2's leaf to a new leaf on tree 0,
  // leaving tree 2 smaller but hosting no remainder leaf.
  a.nodes.pop_back();  // drop node on t.leaf_id(2, 1)
  a.leaf_wires.pop_back();
  a.nodes.push_back(t.node_id(t.leaf_id(0, 2), 0));
  a.leaf_wires.push_back(LeafWire{t.leaf_id(0, 2), 0});
  EXPECT_FALSE(check_full_bandwidth(t, a).ok);
}

TEST(Conditions, InconsistentSpineSetsFail) {
  const FatTree t(2, 3, 4);
  Allocation a = figure3_allocation(t);
  // Tree 1's L2 0 uses spines {0, 2} while tree 0 uses {0, 1}.
  for (auto& w : a.l2_wires) {
    if (w.tree == 1 && w.l2_index == 0 && w.spine_index == 1) {
      w.spine_index = 2;
    }
  }
  const auto report = check_full_bandwidth(t, a);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("S*"), std::string::npos);
}

TEST(Conditions, RemainderSpinesMustBeSubset) {
  const FatTree t(2, 3, 4);
  Allocation a = figure3_allocation(t);
  for (auto& w : a.l2_wires) {
    if (w.tree == 2 && w.l2_index == 1 && w.spine_index == 0) {
      w.spine_index = 2;  // outside S*_1 = {0, 1}
    }
  }
  EXPECT_FALSE(check_full_bandwidth(t, a).ok);
}

TEST(Conditions, SingleLeafJobNeedsNoLinks) {
  const FatTree t(4, 4, 4);
  Allocation a;
  a.job = 1;
  a.requested_nodes = 3;
  for (int n = 0; n < 3; ++n) a.nodes.push_back(t.node_id(5, n));
  EXPECT_TRUE(check_full_bandwidth(t, a).ok);
  EXPECT_TRUE(check_high_utilization(t, a).ok);
}

TEST(Conditions, LaaSStyleWholeLeafPassesBandwidthNotUtilization) {
  // A 3-node request granted a whole 4-node leaf (with all its uplinks):
  // full bandwidth holds, the high-utilization conditions do not.
  const FatTree t(4, 4, 4);
  Allocation a;
  a.job = 1;
  a.requested_nodes = 3;
  for (int n = 0; n < 4; ++n) a.nodes.push_back(t.node_id(0, n));
  for (int i = 0; i < 4; ++i) a.leaf_wires.push_back(LeafWire{0, i});
  EXPECT_TRUE(check_full_bandwidth(t, a).ok);
  const auto util = check_high_utilization(t, a);
  EXPECT_FALSE(util.ok);
  EXPECT_NE(util.error.find("fragmentation"), std::string::npos);
}

TEST(Conditions, SingleSubtreeMustNotHoldSpines) {
  const FatTree t(4, 4, 4);
  Allocation a;
  a.job = 1;
  a.requested_nodes = 4;
  for (int n = 0; n < 2; ++n) a.nodes.push_back(t.node_id(0, n));
  for (int n = 0; n < 2; ++n) a.nodes.push_back(t.node_id(1, n));
  a.leaf_wires = {LeafWire{0, 0}, LeafWire{0, 1}, LeafWire{1, 0},
                  LeafWire{1, 1}};
  EXPECT_TRUE(check_full_bandwidth(t, a).ok);
  a.l2_wires.push_back(L2Wire{0, 0, 0});
  EXPECT_FALSE(check_full_bandwidth(t, a).ok);
}

}  // namespace
}  // namespace jigsaw
