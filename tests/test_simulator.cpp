#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/baseline.hpp"
#include "core/jigsaw_allocator.hpp"
#include "core/laas.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace jigsaw {
namespace {

Trace tiny_trace() {
  Trace trace;
  trace.name = "tiny";
  trace.jobs = {
      Job{0, 0.0, 10, 100.0, 1.0},  Job{1, 0.0, 20, 50.0, 1.0},
      Job{2, 10.0, 64, 30.0, 1.0},  Job{3, 20.0, 4, 200.0, 1.0},
      Job{4, 30.0, 1, 10.0, 1.0},
  };
  normalize(trace);
  return trace;
}

TEST(EventQueue, OrdersByTimeCompletionsFirst) {
  EventQueue q;
  q.push(5.0, EventType::kArrival, 1);
  q.push(5.0, EventType::kCompletion, 2);
  q.push(1.0, EventType::kArrival, 3);
  EXPECT_EQ(q.pop().job, 3);
  EXPECT_EQ(q.pop().job, 2);  // completion before same-time arrival
  EXPECT_EQ(q.pop().job, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoTieBreakWithinType) {
  EventQueue q;
  q.push(1.0, EventType::kArrival, 7);
  q.push(1.0, EventType::kArrival, 8);
  EXPECT_EQ(q.pop().job, 7);
  EXPECT_EQ(q.pop().job, 8);
}

TEST(Speedup, ScenariosMatchPaper) {
  const SpeedupModel none(SpeedupScenario::kNone, 1);
  const SpeedupModel ten(SpeedupScenario::kFixed10, 1);
  const SpeedupModel random(SpeedupScenario::kRandom, 1);
  const Job small{1, 0, 4, 100.0, 1.0};
  const Job medium{2, 0, 32, 100.0, 1.0};
  const Job large{3, 0, 128, 100.0, 1.0};
  EXPECT_EQ(none.fraction(large), 0.0);
  EXPECT_EQ(ten.fraction(small), 0.0);   // <= 4 nodes never speeds up
  EXPECT_EQ(ten.fraction(medium), 0.10);
  EXPECT_NEAR(ten.isolated_runtime(medium), 100.0 / 1.10, 1e-12);
  EXPECT_EQ(random.fraction(medium), 0.0);  // <= 64 nodes in Random
  const double f = random.fraction(large);
  EXPECT_TRUE(f == 0.0 || f == 0.05 || f == 0.15 || f == 0.30);
  // Deterministic across instances with the same seed.
  const SpeedupModel random2(SpeedupScenario::kRandom, 1);
  EXPECT_EQ(random2.fraction(large), f);
}

TEST(Speedup, V2ScalesWithSize) {
  const SpeedupModel v2(SpeedupScenario::kV2, 3);
  for (JobId id = 0; id < 50; ++id) {
    const Job big{id, 0, 256, 100.0, 1.0};
    const Job half{id, 0, 128, 100.0, 1.0};
    const double fb = v2.fraction(big);
    EXPECT_GE(fb, 0.0);
    EXPECT_LE(fb, 0.30);
    EXPECT_NEAR(v2.fraction(half), fb / 2.0, 1e-12);
  }
}

TEST(UtilizationTimeline, IntegratesPiecewise) {
  UtilizationTimeline tl(100);
  tl.record(0.0, 50);
  tl.record(10.0, 50);   // 100 busy from t=10
  tl.record(20.0, -100); // idle from t=20
  EXPECT_DOUBLE_EQ(tl.utilization(0, 20), 0.75);
  EXPECT_DOUBLE_EQ(tl.utilization(0, 10), 0.5);
  EXPECT_DOUBLE_EQ(tl.utilization(10, 20), 1.0);
  EXPECT_DOUBLE_EQ(tl.utilization(5, 15), 0.75);
  EXPECT_DOUBLE_EQ(tl.utilization(20, 30), 0.0);
}

TEST(Simulator, CompletesAllJobs) {
  const FatTree t(4, 4, 4);
  const BaselineAllocator baseline;
  const SimMetrics m = simulate(t, baseline, tiny_trace(), SimConfig{});
  EXPECT_EQ(m.completed, 5u);
  EXPECT_GT(m.makespan, 0.0);
  EXPECT_GT(m.mean_turnaround_all, 0.0);
}

TEST(Simulator, MakespanLowerBound) {
  // One job: makespan equals its runtime.
  const FatTree t(4, 4, 4);
  Trace trace;
  trace.jobs = {Job{0, 0.0, 8, 123.0, 1.0}};
  normalize(trace);
  const BaselineAllocator baseline;
  const SimMetrics m = simulate(t, baseline, trace, SimConfig{});
  EXPECT_DOUBLE_EQ(m.makespan, 123.0);
  EXPECT_DOUBLE_EQ(m.mean_turnaround_all, 123.0);
}

TEST(Simulator, SpeedupsShortenIsolatedRuns) {
  const FatTree t(4, 4, 4);
  Trace trace;
  trace.jobs = {Job{0, 0.0, 8, 110.0, 1.0}};
  normalize(trace);
  SimConfig config;
  config.scenario = SpeedupScenario::kFixed10;
  const JigsawAllocator jigsaw;
  const BaselineAllocator baseline;
  const SimMetrics iso = simulate(t, jigsaw, trace, config);
  const SimMetrics base = simulate(t, baseline, trace, config);
  EXPECT_DOUBLE_EQ(iso.makespan, 100.0);   // 110 / 1.1
  EXPECT_DOUBLE_EQ(base.makespan, 110.0);  // baseline never speeds up
}

TEST(Simulator, BackfillingReducesTurnaroundVsNoBackfill) {
  const FatTree t(4, 4, 4);
  Trace trace;
  // A near-machine-filling job followed by a blocked giant head; short
  // small jobs can only run early via backfilling into the 4 spare nodes.
  trace.jobs.push_back(Job{0, 0.0, 60, 100.0, 1.0});
  trace.jobs.push_back(Job{1, 1.0, 64, 100.0, 1.0});
  for (int k = 0; k < 10; ++k) {
    trace.jobs.push_back(Job{2 + k, 2.0, 2, 5.0, 1.0});
  }
  normalize(trace);
  const BaselineAllocator baseline;
  SimConfig with;
  with.backfill_window = 50;
  SimConfig without;
  without.backfill_window = 0;
  const SimMetrics a = simulate(t, baseline, trace, with);
  const SimMetrics b = simulate(t, baseline, trace, without);
  EXPECT_LT(a.mean_turnaround_all, b.mean_turnaround_all);
  EXPECT_EQ(a.completed, b.completed);
}

TEST(Simulator, UtilizationWithinBounds) {
  const FatTree t(4, 4, 4);
  const JigsawAllocator jigsaw;
  Trace trace;
  Rng rng(5);
  for (int k = 0; k < 60; ++k) {
    trace.jobs.push_back(Job{k, 0.0, 1 + static_cast<int>(rng.below(16)),
                             rng.uniform(10.0, 100.0), 1.0});
  }
  normalize(trace);
  const SimMetrics m = simulate(t, jigsaw, trace, SimConfig{});
  EXPECT_GT(m.steady_utilization, 0.5);
  EXPECT_LE(m.steady_utilization, 1.0 + 1e-9);
  EXPECT_EQ(m.completed, 60u);
}

TEST(Simulator, LaasWasteIsTracked) {
  const FatTree t(4, 4, 4);
  const LaasAllocator laas;
  Trace trace;
  // 17-node jobs span subtrees and round up to 5 whole leaves (20 nodes):
  // 3 of every 20 allocated nodes are waste.
  for (int k = 0; k < 9; ++k) {
    trace.jobs.push_back(Job{k, 0.0, 17, 100.0, 1.0});
  }
  normalize(trace);
  SimConfig config;
  const SimMetrics m = simulate(t, laas, trace, config);
  EXPECT_GT(m.steady_waste, 0.10);
  EXPECT_EQ(m.completed, 9u);
}

TEST(Simulator, InstantSamplesCollectedInSteadyWindow) {
  const FatTree t(4, 4, 4);
  const BaselineAllocator baseline;
  Trace trace;
  for (int k = 0; k < 30; ++k) {
    trace.jobs.push_back(Job{k, 0.0, 16, 50.0, 1.0});
  }
  normalize(trace);
  SimConfig config;
  config.collect_instant_samples = true;
  const SimMetrics m = simulate(t, baseline, trace, config);
  EXPECT_FALSE(m.instant_utilization.empty());
  for (const double u : m.instant_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 100.0);
  }
}

TEST(Simulator, MaxJobsTruncates) {
  const FatTree t(4, 4, 4);
  const BaselineAllocator baseline;
  SimConfig config;
  config.max_jobs = 3;
  const SimMetrics m = simulate(t, baseline, tiny_trace(), config);
  EXPECT_EQ(m.completed, 3u);
}

TEST(Simulator, MeasuredInterferenceStretchesBaselineOnly) {
  const FatTree t(4, 4, 4);
  Trace trace;
  // Two 32-node jobs sharing the machine: Baseline places them interleaved
  // enough that D-mod-k link sharing occurs, so with a communication
  // fraction their runtimes stretch; Jigsaw runs penalty-free.
  trace.jobs = {Job{0, 0.0, 32, 100.0, 1.0}, Job{1, 0.0, 32, 100.0, 1.0}};
  normalize(trace);
  const BaselineAllocator baseline;
  const JigsawAllocator jigsaw;
  SimConfig measured;
  measured.measured_interference_comm_fraction = 0.5;
  const double base_plain =
      simulate(t, baseline, trace, SimConfig{}).makespan;
  const double base_measured =
      simulate(t, baseline, trace, measured).makespan;
  const double jig_measured = simulate(t, jigsaw, trace, measured).makespan;
  EXPECT_GE(base_measured, base_plain);  // penalties only add time
  EXPECT_DOUBLE_EQ(jig_measured, 100.0); // isolating scheme unaffected
}

TEST(Simulator, MeasuredInterferenceZeroFractionIsNoOp) {
  const FatTree t(4, 4, 4);
  const BaselineAllocator baseline;
  const Trace trace = tiny_trace();
  SimConfig zero;
  zero.measured_interference_comm_fraction = 0.0;
  const SimMetrics a = simulate(t, baseline, trace, SimConfig{});
  const SimMetrics b = simulate(t, baseline, trace, zero);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.mean_turnaround_all, b.mean_turnaround_all);
}

TEST(Simulator, JobRecordsAndPercentiles) {
  const FatTree t(4, 4, 4);
  const BaselineAllocator baseline;
  SimConfig config;
  config.collect_job_records = true;
  const SimMetrics m = simulate(t, baseline, tiny_trace(), config);
  ASSERT_EQ(m.job_records.size(), 5u);
  for (const JobRecord& r : m.job_records) {
    EXPECT_GE(r.start, r.arrival);
    EXPECT_GT(r.end, r.start);
    EXPECT_DOUBLE_EQ(r.turnaround(), r.wait() + r.runtime());
  }
  EXPECT_GT(m.p50_turnaround, 0.0);
  EXPECT_LE(m.p50_turnaround, m.p90_turnaround);
  EXPECT_LE(m.p90_turnaround, m.p99_turnaround);

  std::ostringstream csv;
  write_job_records_csv(csv, m.job_records);
  const std::string text = csv.str();
  EXPECT_NE(text.find("job,nodes,arrival"), std::string::npos);
  // Header + 5 data lines.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 6);
}

TEST(Simulator, OversizeJobThrows) {
  const FatTree t(4, 4, 4);
  const BaselineAllocator baseline;
  Trace trace;
  trace.jobs = {Job{0, 0.0, 65, 10.0, 1.0}};
  normalize(trace);
  EXPECT_THROW(simulate(t, baseline, trace, SimConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace jigsaw
