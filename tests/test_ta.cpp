#include <gtest/gtest.h>

#include <set>

#include "core/conditions.hpp"
#include "core/ta.hpp"
#include "test_helpers.hpp"

namespace jigsaw {
namespace {

using testing::must_allocate;

TEST(Ta, SmallJobOnSingleLeaf) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const TaAllocator ta;
  const Allocation a = must_allocate(ta, state, 1, 3);
  const LeafId leaf = t.leaf_of_node(a.nodes.front());
  for (const NodeId n : a.nodes) EXPECT_EQ(t.leaf_of_node(n), leaf);
  EXPECT_TRUE(a.leaf_wires.empty());  // intra-leaf jobs reserve no links
}

TEST(Ta, SmallJobBestFit) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const TaAllocator ta;
  const Allocation a = must_allocate(ta, state, 1, 3);  // 1 free node left
  const LeafId first = t.leaf_of_node(a.nodes.front());
  const Allocation b = must_allocate(ta, state, 2, 1);
  // Best fit: the 1-node job lands in the 1-node hole.
  EXPECT_EQ(t.leaf_of_node(b.nodes.front()), first);
  EXPECT_EQ(state.free_node_count(first), 0);
}

TEST(Ta, ExternalFragmentationFigure2Right) {
  // Free nodes exist (2 + 2) but no single leaf has 3: a 3-node job cannot
  // be placed under TA's must-fit-in-a-leaf rule.
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const TaAllocator ta;
  // Fill every leaf down to 2 free nodes.
  for (LeafId l = 0; l < t.total_leaves(); ++l) {
    Allocation filler;
    filler.job = 100 + l;
    filler.requested_nodes = 2;
    filler.nodes = {t.node_id(l, 0), t.node_id(l, 1)};
    state.apply(filler);
  }
  EXPECT_EQ(state.total_free_nodes(), 32);
  EXPECT_FALSE(ta.allocate(state, JobRequest{1, 3, 0.0}).has_value());
  EXPECT_TRUE(ta.allocate(state, JobRequest{2, 2, 0.0}).has_value());
}

TEST(Ta, MediumJobSingleSubtreeWithImplicitLinkReservation) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const TaAllocator ta;
  const Allocation a = must_allocate(ta, state, 1, 6);  // 2 leaves in 1 tree
  const TreeId tree = t.tree_of_node(a.nodes.front());
  std::set<LeafId> leaves;
  for (const NodeId n : a.nodes) {
    EXPECT_EQ(t.tree_of_node(n), tree);
    leaves.insert(t.leaf_of_node(n));
  }
  // Every touched leaf's uplinks are implicitly reserved (Figure 2 center).
  EXPECT_EQ(a.leaf_wires.size(), leaves.size() * 4);
  for (const LeafId l : leaves) {
    EXPECT_EQ(state.free_leaf_up(l), 0u);
  }
}

TEST(Ta, LeafNotSharedBetweenMultiLeafJobs) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const TaAllocator ta;
  const Allocation a = must_allocate(ta, state, 1, 6);  // 4+2 on two leaves
  // The second multi-leaf job must avoid the half-used leaf because its
  // uplinks belong to job 1.
  const Allocation b = must_allocate(ta, state, 2, 6);
  std::set<LeafId> a_leaves;
  std::set<LeafId> b_leaves;
  for (const NodeId n : a.nodes) a_leaves.insert(t.leaf_of_node(n));
  for (const NodeId n : b.nodes) b_leaves.insert(t.leaf_of_node(n));
  for (const LeafId l : b_leaves) EXPECT_FALSE(a_leaves.count(l));
}

TEST(Ta, ClaimedLeavesAreClosedToIntraLeafJobs) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const TaAllocator ta;
  must_allocate(ta, state, 1, 6);  // leaves 0 (4 nodes) and 1 (2 nodes)
  // Leaf 1 keeps two idle nodes, but its uplinks belong to job 1, and TA
  // avoids any placement where contention is conceivable: the 2-node job
  // must take a pristine leaf instead (internal link fragmentation).
  const Allocation b = must_allocate(ta, state, 2, 2);
  EXPECT_NE(t.leaf_of_node(b.nodes.front()), 1);
  EXPECT_EQ(state.free_node_count(1), 2);  // stranded
}

TEST(Ta, LargeJobReservesWholeSubtreeSpines) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const TaAllocator ta;
  const Allocation a = must_allocate(ta, state, 1, 20);  // > one subtree
  std::set<TreeId> trees;
  for (const NodeId n : a.nodes) trees.insert(t.tree_of_node(n));
  EXPECT_GE(trees.size(), 2u);
  for (const TreeId tree : trees) {
    for (int i = 0; i < t.l2_per_tree(); ++i) {
      EXPECT_EQ(state.free_l2_up(tree, i), 0u);
    }
  }
}

TEST(Ta, TwoCrossSubtreeJobsCannotShareASubtree) {
  const FatTree t(4, 4, 4);  // 64 nodes, 16 per subtree
  ClusterState state(t);
  const TaAllocator ta;
  must_allocate(ta, state, 1, 20);  // spans 2 subtrees, reserves their spines
  // 44 free nodes remain but only 2 un-reserved subtrees (32 usable):
  // another 40-node cross-subtree job must fail.
  EXPECT_FALSE(ta.allocate(state, JobRequest{2, 40, 0.0}).has_value());
  EXPECT_TRUE(ta.allocate(state, JobRequest{3, 30, 0.0}).has_value());
}

TEST(Ta, MediumJobMustFitInOneSubtree) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const TaAllocator ta;
  // A 10-node intra-subtree job per subtree: two full leaves plus two
  // nodes on a third leaf, whose uplinks get implicitly reserved. Each
  // subtree keeps one pristine leaf (4 usable nodes for multi-leaf jobs)
  // plus 2 stranded nodes behind reserved uplinks.
  while (ta.allocate(state, JobRequest{50, 10, 0.0}).has_value()) {
    must_allocate(ta, state, 50, 10);
  }
  EXPECT_EQ(state.total_free_nodes(), 24);  // 6 per subtree
  // A 6-node job fits no single subtree's usable capacity (4 each), and
  // TA forbids spilling a subtree-sized job across subtrees.
  EXPECT_FALSE(ta.allocate(state, JobRequest{1, 6, 0.0}).has_value());
  // Leaf-sized jobs still fit: the pristine leaf takes a 4-node job and
  // the stranded 2-node holes take intra-leaf jobs.
  EXPECT_TRUE(ta.allocate(state, JobRequest{2, 4, 0.0}).has_value());
  EXPECT_TRUE(ta.allocate(state, JobRequest{3, 2, 0.0}).has_value());
}

TEST(Ta, NoInternalNodeFragmentation) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const TaAllocator ta;
  for (const int size : {1, 3, 6, 17}) {
    const Allocation a = must_allocate(ta, state, size, size);
    EXPECT_EQ(a.allocated_nodes(), size);
  }
}

}  // namespace
}  // namespace jigsaw
