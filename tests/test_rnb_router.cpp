#include <gtest/gtest.h>

#include "core/jigsaw_allocator.hpp"
#include "core/laas.hpp"
#include "routing/rnb_router.hpp"
#include "test_helpers.hpp"

namespace jigsaw {
namespace {

using testing::must_allocate;

void expect_routable(const FatTree& t, const Allocation& a,
                     const std::vector<Flow>& perm) {
  const auto outcome = route_permutation(t, a, perm);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  const std::string violation = verify_one_flow_per_link(t, a, outcome.routes);
  EXPECT_TRUE(violation.empty()) << violation;
}

TEST(RnbRouter, SingleLeafPartition) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  JigsawAllocator jigsaw;
  const Allocation a = must_allocate(jigsaw, state, 1, 3);
  Rng rng(1);
  expect_routable(t, a, random_permutation(a, rng));
}

TEST(RnbRouter, TwoLevelPartitionWithRemainderLeaf) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  JigsawAllocator jigsaw;
  const Allocation a = must_allocate(jigsaw, state, 1, 11);  // 2x4 + 3
  Rng rng(2);
  for (int round = 0; round < 20; ++round) {
    expect_routable(t, a, random_permutation(a, rng));
  }
}

TEST(RnbRouter, ThreeLevelPartitionWithRemainderTreeAndLeaf) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  JigsawAllocator jigsaw;
  // 16 nodes/tree: 39 = 2 full trees (16) + remainder tree (4 + 3).
  const Allocation a = must_allocate(jigsaw, state, 1, 39);
  Rng rng(3);
  for (int round = 0; round < 20; ++round) {
    expect_routable(t, a, random_permutation(a, rng));
  }
}

TEST(RnbRouter, IdentityPermutationUsesNoLinks) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  JigsawAllocator jigsaw;
  const Allocation a = must_allocate(jigsaw, state, 1, 11);
  std::vector<Flow> identity;
  for (const NodeId n : a.nodes) identity.push_back(Flow{n, n});
  const auto outcome = route_permutation(t, a, identity);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  for (const auto& r : outcome.routes) EXPECT_TRUE(r.links.empty());
}

TEST(RnbRouter, FullReversalPermutation) {
  // Worst-case-ish adversarial pattern: node k sends to node N-1-k.
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  JigsawAllocator jigsaw;
  const Allocation a = must_allocate(jigsaw, state, 1, 48);  // 3 full trees
  std::vector<NodeId> sorted = a.nodes;
  std::sort(sorted.begin(), sorted.end());
  std::vector<Flow> reversal;
  for (std::size_t k = 0; k < sorted.size(); ++k) {
    reversal.push_back(Flow{sorted[k], sorted[sorted.size() - 1 - k]});
  }
  expect_routable(t, a, reversal);
}

TEST(RnbRouter, LaaSPartitionsAreRoutable) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  LaasAllocator laas;
  const Allocation a = must_allocate(laas, state, 1, 23);  // rounds to 6 leaves
  Rng rng(4);
  for (int round = 0; round < 10; ++round) {
    expect_routable(t, a, random_permutation(a, rng));
  }
}

TEST(RnbRouter, RejectsNonPermutations) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  JigsawAllocator jigsaw;
  const Allocation a = must_allocate(jigsaw, state, 1, 4);
  std::vector<Flow> bad;
  for (const NodeId n : a.nodes) bad.push_back(Flow{n, a.nodes[0]});
  EXPECT_FALSE(route_permutation(t, a, bad).ok);
  bad.pop_back();
  EXPECT_FALSE(route_permutation(t, a, bad).ok);  // wrong size
}

TEST(RnbRouter, RejectsConditionViolatingAllocations) {
  const FatTree t(4, 4, 4);
  Allocation bad;
  bad.job = 1;
  bad.requested_nodes = 3;
  bad.nodes = {t.node_id(0, 0), t.node_id(1, 0), t.node_id(1, 1)};
  // The remainder leaf's wire {2} is not a subset of S = {0, 1}.
  bad.leaf_wires = {LeafWire{0, 2}, LeafWire{1, 0}, LeafWire{1, 1}};
  std::vector<Flow> perm{{bad.nodes[0], bad.nodes[1]},
                         {bad.nodes[1], bad.nodes[2]},
                         {bad.nodes[2], bad.nodes[0]}};
  const auto outcome = route_permutation(t, bad, perm);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("conditions"), std::string::npos);
}

TEST(RnbRouter, VerifierDetectsDoubleUse) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  JigsawAllocator jigsaw;
  const Allocation a = must_allocate(jigsaw, state, 1, 8);
  Rng rng(5);
  auto outcome = route_permutation(t, a, random_permutation(a, rng));
  ASSERT_TRUE(outcome.ok);
  // Duplicate one routed flow: some link must now carry two flows.
  outcome.routes.push_back(outcome.routes.front());
  if (!outcome.routes.front().links.empty()) {
    EXPECT_FALSE(verify_one_flow_per_link(t, a, outcome.routes).empty());
  }
}

TEST(RnbRouter, VerifierDetectsForeignLink) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  JigsawAllocator jigsaw;
  const Allocation a = must_allocate(jigsaw, state, 1, 4);
  std::vector<RoutedFlow> routes(1);
  routes[0].flow = Flow{a.nodes[0], a.nodes[1]};
  routes[0].links = {t.l2_up_link(3, 0, 0)};  // not allocated
  EXPECT_FALSE(verify_one_flow_per_link(t, a, routes).empty());
}

TEST(RnbRouterExhaustive, AgreesWithConstructiveOnLegalPartitions) {
  const FatTree t(2, 3, 4);
  ClusterState state(t);
  JigsawAllocator jigsaw;
  const Allocation a = must_allocate(jigsaw, state, 1, 11);  // Figure 3 shape
  Rng rng(6);
  for (int round = 0; round < 5; ++round) {
    const auto perm = random_permutation(a, rng);
    const auto constructive = route_permutation(t, a, perm);
    ASSERT_TRUE(constructive.ok) << constructive.error;
    const auto exhaustive = route_permutation_exhaustive(t, a, perm);
    ASSERT_TRUE(exhaustive.ok) << exhaustive.error;
    EXPECT_TRUE(verify_one_flow_per_link(t, a, exhaustive.routes).empty());
  }
}

}  // namespace
}  // namespace jigsaw
