// UtilizationTimeline edge cases and the job-record CSV export.
//
// The timeline is the integrator behind every Figure 6/8 number, so its
// corner cases — empty windows, windows that predate the first recorded
// point, interleaved busy/waste updates at shared timestamps — deserve
// direct coverage rather than riding along inside simulator tests.

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/metrics.hpp"

namespace jigsaw {
namespace {

TEST(UtilizationTimeline, EmptyOrInvertedWindowIsZero) {
  UtilizationTimeline tl(100);
  tl.record(0.0, 50);
  EXPECT_DOUBLE_EQ(tl.utilization(10.0, 10.0), 0.0);  // empty window
  EXPECT_DOUBLE_EQ(tl.utilization(20.0, 10.0), 0.0);  // inverted window
  EXPECT_DOUBLE_EQ(tl.waste_fraction(10.0, 10.0), 0.0);
}

TEST(UtilizationTimeline, NoPointsMeansZeroEverywhere) {
  const UtilizationTimeline tl(100);
  EXPECT_EQ(tl.busy_now(), 0);
  EXPECT_EQ(tl.waste_now(), 0);
  EXPECT_DOUBLE_EQ(tl.utilization(0.0, 100.0), 0.0);
}

TEST(UtilizationTimeline, WindowBeforeFirstPointIsZero) {
  UtilizationTimeline tl(100);
  tl.record(50.0, 100);
  // The machine is idle before the first recorded change.
  EXPECT_DOUBLE_EQ(tl.utilization(0.0, 50.0), 0.0);
  // A window straddling the first point integrates only the busy half.
  EXPECT_DOUBLE_EQ(tl.utilization(40.0, 60.0), 0.5);
  // Fully after the point: busy level holds to the window end.
  EXPECT_DOUBLE_EQ(tl.utilization(50.0, 80.0), 1.0);
}

TEST(UtilizationTimeline, PiecewiseIntegrationAcrossSteps) {
  UtilizationTimeline tl(100);
  tl.record(0.0, 40);    // 40 busy on [0, 10)
  tl.record(10.0, 40);   // 80 busy on [10, 20)
  tl.record(20.0, -60);  // 20 busy from 20 on
  // (40*10 + 80*10 + 20*10) / (100*30) = 1400/3000
  EXPECT_DOUBLE_EQ(tl.utilization(0.0, 30.0), 1400.0 / 3000.0);
  // Sub-window clipped to one segment.
  EXPECT_DOUBLE_EQ(tl.utilization(12.0, 18.0), 0.8);
  EXPECT_EQ(tl.busy_now(), 20);
}

TEST(UtilizationTimeline, RecordWasteInterleavesWithBusy) {
  UtilizationTimeline tl(100);
  tl.record(0.0, 50);        // 50 busy
  tl.record_waste(0.0, 10);  // same timestamp: coalesces into one point
  tl.record(10.0, -50);
  tl.record_waste(10.0, -10);
  EXPECT_DOUBLE_EQ(tl.utilization(0.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(tl.waste_fraction(0.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(tl.utilization(10.0, 20.0), 0.0);
  EXPECT_DOUBLE_EQ(tl.waste_fraction(10.0, 20.0), 0.0);
  EXPECT_EQ(tl.busy_now(), 0);
  EXPECT_EQ(tl.waste_now(), 0);
}

TEST(UtilizationTimeline, WasteOnlyPointsCarryBusyLevelForward) {
  UtilizationTimeline tl(100);
  tl.record(0.0, 60);
  tl.record_waste(5.0, 20);  // waste appears mid-flight, busy unchanged
  EXPECT_DOUBLE_EQ(tl.utilization(0.0, 10.0), 0.6);
  EXPECT_DOUBLE_EQ(tl.waste_fraction(0.0, 10.0), 0.1);  // 20 over [5,10)
  EXPECT_DOUBLE_EQ(tl.waste_fraction(5.0, 10.0), 0.2);
}

TEST(UtilizationTimeline, RejectsTimeGoingBackwards) {
  UtilizationTimeline tl(100);
  tl.record(10.0, 5);
  EXPECT_THROW(tl.record(9.0, 5), std::invalid_argument);
  EXPECT_THROW(tl.record_waste(9.0, 5), std::invalid_argument);
}

TEST(JobRecordsCsv, HeaderAndRowFormat) {
  std::vector<JobRecord> records;
  records.push_back(JobRecord{7, 64, 10.0, 25.0, 125.0});
  records.push_back(JobRecord{8, 1, 0.0, 0.0, 50.5});

  std::ostringstream out;
  write_job_records_csv(out, records);

  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "job,nodes,arrival,start,end,wait,turnaround");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "7,64,10,25,125,15,115");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "8,1,0,0,50.5,0,50.5");
  EXPECT_FALSE(std::getline(in, line));  // nothing after the last record
}

TEST(JobRecordsCsv, EmptyRecordsWriteHeaderOnly) {
  std::ostringstream out;
  write_job_records_csv(out, {});
  EXPECT_EQ(out.str(), "job,nodes,arrival,start,end,wait,turnaround\n");
}

}  // namespace
}  // namespace jigsaw
