#include <gtest/gtest.h>

#include <set>

#include "topology/fat_tree.hpp"

namespace jigsaw {
namespace {

TEST(FatTree, PaperClusterSizes) {
  // §5.1: radix 16/18/22/28 -> 1024/1458/2662/5488 nodes.
  EXPECT_EQ(FatTree::from_radix(16).total_nodes(), 1024);
  EXPECT_EQ(FatTree::from_radix(18).total_nodes(), 1458);
  EXPECT_EQ(FatTree::from_radix(22).total_nodes(), 2662);
  EXPECT_EQ(FatTree::from_radix(28).total_nodes(), 5488);
}

TEST(FatTree, ShapeFromRadix) {
  const FatTree t = FatTree::from_radix(8);
  EXPECT_EQ(t.nodes_per_leaf(), 4);
  EXPECT_EQ(t.leaves_per_tree(), 4);
  EXPECT_EQ(t.trees(), 8);
  EXPECT_EQ(t.l2_per_tree(), 4);
  EXPECT_EQ(t.spines_per_group(), 4);
  EXPECT_EQ(t.total_leaves(), 32);
  EXPECT_EQ(t.total_l2(), 32);
  EXPECT_EQ(t.total_spines(), 16);
  EXPECT_EQ(t.radix(), 8);
}

TEST(FatTree, AtLeastPicksSmallestSufficient) {
  EXPECT_EQ(FatTree::at_least(1024).total_nodes(), 1024);
  EXPECT_EQ(FatTree::at_least(1025).total_nodes(), 1458);
  EXPECT_EQ(FatTree::at_least(1296).total_nodes(), 1458);  // Cab fits here
}

TEST(FatTree, InvalidParametersThrow) {
  EXPECT_THROW(FatTree::from_radix(7), std::invalid_argument);
  EXPECT_THROW(FatTree::from_radix(66), std::invalid_argument);
  EXPECT_THROW(FatTree(0, 4, 4), std::invalid_argument);
  EXPECT_THROW(FatTree(65, 4, 4), std::invalid_argument);
}

TEST(FatTree, NodeLeafTreeMapping) {
  const FatTree t(3, 4, 5);  // 3 nodes/leaf, 4 leaves/tree, 5 trees
  EXPECT_EQ(t.total_nodes(), 60);
  const NodeId n = 37;  // leaf 12, tree 3
  EXPECT_EQ(t.leaf_of_node(n), 12);
  EXPECT_EQ(t.node_index_in_leaf(n), 1);
  EXPECT_EQ(t.tree_of_leaf(12), 3);
  EXPECT_EQ(t.leaf_index_in_tree(12), 0);
  EXPECT_EQ(t.tree_of_node(n), 3);
  EXPECT_EQ(t.node_id(12, 1), n);
  EXPECT_EQ(t.leaf_id(3, 0), 12);
}

TEST(FatTree, SpineGroups) {
  const FatTree t(3, 4, 5);
  // Spine group i holds w3 == m2 == 4 spines.
  EXPECT_EQ(t.spine_id(0, 0), 0);
  EXPECT_EQ(t.spine_id(1, 0), 4);
  EXPECT_EQ(t.spine_id(2, 3), 11);
  EXPECT_EQ(t.group_of_spine(11), 2);
  EXPECT_EQ(t.index_in_group(11), 3);
  EXPECT_EQ(t.total_spines(), 12);
}

TEST(FatTree, DirectedLinkIdsAreDenseAndUnique) {
  const FatTree t(2, 3, 4);
  std::set<int> ids;
  for (NodeId n = 0; n < t.total_nodes(); ++n) {
    ids.insert(t.node_up_link(n));
    ids.insert(t.node_down_link(n));
  }
  for (LeafId l = 0; l < t.total_leaves(); ++l) {
    for (int i = 0; i < t.l2_per_tree(); ++i) {
      ids.insert(t.leaf_up_link(l, i));
      ids.insert(t.leaf_down_link(l, i));
    }
  }
  for (TreeId tr = 0; tr < t.trees(); ++tr) {
    for (int i = 0; i < t.l2_per_tree(); ++i) {
      for (int j = 0; j < t.spines_per_group(); ++j) {
        ids.insert(t.l2_up_link(tr, i, j));
        ids.insert(t.l2_down_link(tr, i, j));
      }
    }
  }
  EXPECT_EQ(static_cast<int>(ids.size()), t.directed_link_count());
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), t.directed_link_count() - 1);
}

TEST(FatTree, LinkNamesRoundTripKinds) {
  const FatTree t(2, 3, 4);
  EXPECT_NE(t.link_name(t.node_up_link(5)).find("node5"), std::string::npos);
  EXPECT_NE(t.link_name(t.leaf_up_link(2, 1)).find("leaf2"),
            std::string::npos);
  EXPECT_NE(t.link_name(t.l2_up_link(1, 0, 2)).find("t1"), std::string::npos);
}

TEST(FatTree, RadixThrowsForNonUniform) {
  EXPECT_THROW(FatTree(3, 4, 5).radix(), std::logic_error);
}

TEST(FatTree, UpDownBalancePerSwitch) {
  // Full-bandwidth property: every leaf has as many uplinks (w2) as nodes
  // (m1); every L2 as many spine uplinks (w3) as leaves (m2).
  for (const int radix : {4, 8, 16}) {
    const FatTree t = FatTree::from_radix(radix);
    EXPECT_EQ(t.nodes_per_leaf(), t.l2_per_tree());
    EXPECT_EQ(t.leaves_per_tree(), t.spines_per_group());
  }
}

}  // namespace
}  // namespace jigsaw
