// Property tests over random allocate/release workloads: every allocator
// preserves cluster-state invariants, never double-books resources, and
// the condition-based schemes always emit §3.2-compliant partitions.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/baseline.hpp"
#include "core/conditions.hpp"
#include "core/jigsaw_allocator.hpp"
#include "core/laas.hpp"
#include "core/lc.hpp"
#include "core/ta.hpp"
#include "util/rng.hpp"

namespace jigsaw {
namespace {

enum class Scheme { kBaseline, kJigsaw, kLaas, kTa, kLc, kLcs };

AllocatorPtr make(Scheme scheme) {
  switch (scheme) {
    case Scheme::kBaseline: return std::make_unique<BaselineAllocator>();
    case Scheme::kJigsaw: return std::make_unique<JigsawAllocator>();
    case Scheme::kLaas: return std::make_unique<LaasAllocator>();
    case Scheme::kTa: return std::make_unique<TaAllocator>();
    case Scheme::kLc:
      return std::make_unique<LeastConstrainedAllocator>(false);
    case Scheme::kLcs:
      return std::make_unique<LeastConstrainedAllocator>(true);
  }
  return nullptr;
}

bool condition_based(Scheme s) {
  return s == Scheme::kJigsaw || s == Scheme::kLaas || s == Scheme::kLc;
}

class AllocatorChurn
    : public ::testing::TestWithParam<std::tuple<Scheme, int>> {};

TEST_P(AllocatorChurn, RandomChurnPreservesInvariants) {
  const auto [scheme, seed] = GetParam();
  const AllocatorPtr allocator = make(scheme);
  const FatTree t = FatTree::from_radix(8);  // 256 nodes
  ClusterState state(t);
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);

  std::map<JobId, Allocation> live;
  int placed = 0;
  int failed = 0;
  for (JobId job = 0; job < 120; ++job) {
    // Random churn: 2/3 allocate, 1/3 release.
    if (!live.empty() && rng.below(3) == 0) {
      auto it = live.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.below(live.size())));
      state.release(it->second);
      live.erase(it);
      continue;
    }
    const int size = 1 + static_cast<int>(rng.below(48));
    const double demand =
        scheme == Scheme::kLcs ? 0.5 + 0.5 * static_cast<double>(rng.below(4))
                               : 0.0;
    auto alloc = allocator->allocate(state, JobRequest{job, size, demand});
    if (!alloc.has_value()) {
      ++failed;
      // The allocator must never fail when the machine is empty and the
      // job fits (completeness at the trivial boundary).
      ASSERT_FALSE(live.empty() && size <= t.total_nodes())
          << "scheme failed on an empty machine, size " << size;
      continue;
    }
    ++placed;
    // Requested vs allocated.
    EXPECT_GE(alloc->allocated_nodes(), size);
    if (scheme != Scheme::kLaas) {
      EXPECT_EQ(alloc->allocated_nodes(), size);
    }
    if (condition_based(scheme)) {
      const auto report = check_full_bandwidth(t, *alloc);
      ASSERT_TRUE(report.ok) << "size " << size << ": " << report.error;
    }
    state.apply(*alloc);  // throws on any double-booking
    ASSERT_TRUE(state.check_invariants());
    live.emplace(job, std::move(*alloc));
  }
  EXPECT_GT(placed, 10);

  // Releasing everything restores a pristine machine.
  for (auto& [job, alloc] : live) {
    (void)job;
    state.release(alloc);
  }
  EXPECT_EQ(state.total_free_nodes(), t.total_nodes());
  EXPECT_TRUE(state.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, AllocatorChurn,
    ::testing::Combine(::testing::Values(Scheme::kBaseline, Scheme::kJigsaw,
                                         Scheme::kLaas, Scheme::kTa,
                                         Scheme::kLc, Scheme::kLcs),
                       ::testing::Range(0, 8)));

class PackingCompleteness : public ::testing::TestWithParam<int> {};

TEST_P(PackingCompleteness, JigsawPacksUniformJobsPerfectly) {
  // Uniform jobs whose size divides the machine should pack to 100%.
  const int size = GetParam();
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  const int count = t.total_nodes() / size;
  for (JobId job = 0; job < count; ++job) {
    auto alloc = jigsaw.allocate(state, JobRequest{job, size, 0.0});
    ASSERT_TRUE(alloc.has_value())
        << "job " << job << " of size " << size << " failed; free="
        << state.total_free_nodes();
    state.apply(*alloc);
  }
  EXPECT_EQ(state.total_free_nodes(), 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PackingCompleteness,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace jigsaw
