// Observability layer: sinks, metrics registry, scoped timers, and the
// end-to-end event stream a simulation run produces.
//
// The sink tests validate the emitted bytes with a small recursive-descent
// JSON parser rather than substring checks, so a malformed escape or a
// stray comma fails loudly — this is the acceptance gate for "the Chrome
// trace loads in Perfetto".

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/jigsaw_allocator.hpp"
#include "obs/cluster_probe.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/observer.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/sink.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

namespace jigsaw {
namespace {

// ---------------------------------------------------------------------------
// Minimal strict JSON parser (objects, arrays, strings, numbers, literals).
// Throws std::runtime_error on any syntax violation.

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  bool has(const std::string& key) const {
    return type == Type::kObject && object.count(key) > 0;
  }
  const Json& at(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("JSON error at byte " + std::to_string(pos_) +
                             ": " + what);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume_literal(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  Json value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      Json v;
      v.type = Json::Type::kString;
      v.str = string();
      return v;
    }
    if (c == 't' || c == 'f') {
      Json v;
      v.type = Json::Type::kBool;
      v.boolean = (c == 't');
      if (!consume_literal(c == 't' ? "true" : "false")) fail("bad literal");
      return v;
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Json{};
    }
    return number();
  }

  Json object() {
    Json v;
    v.type = Json::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object[key] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    Json v;
    v.type = Json::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control char");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          for (int k = 0; k < 4; ++k) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + k]))) {
              fail("bad \\u escape");
            }
          }
          pos_ += 4;
          out += '?';  // code point itself irrelevant to these tests
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad number");
    if (text_[pos_] == '0') {
      ++pos_;  // JSON: no leading zeros
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad frac");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad exp");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    Json v;
    v.type = Json::Type::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

Json parse_json(const std::string& text) { return JsonParser(text).parse(); }

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Sinks

TEST(JsonlSink, EmitsOneValidObjectPerLine) {
  std::ostringstream out;
  {
    obs::JsonlTraceSink sink(out);
    sink.emit(obs::instant("job", "job.arrival", 12.5)
                  .arg("job", std::int64_t{7})
                  .arg("nodes", std::int64_t{64}));
    sink.emit(obs::span("sched", "sched.pass", 30.0, 0.002)
                  .arg("queue_depth", std::int64_t{3}));
    sink.emit(obs::counter("sim", "queue.depth", 30.0)
                  .arg("depth", std::int64_t{3}));
    sink.finish();
  }
  const auto lines = split_lines(out.str());
  ASSERT_EQ(lines.size(), 3u);

  const Json arrival = parse_json(lines[0]);
  EXPECT_EQ(arrival.at("ph").str, "i");
  EXPECT_EQ(arrival.at("cat").str, "job");
  EXPECT_EQ(arrival.at("name").str, "job.arrival");
  EXPECT_DOUBLE_EQ(arrival.at("ts").number, 12.5);
  EXPECT_DOUBLE_EQ(arrival.at("args").at("job").number, 7.0);
  EXPECT_DOUBLE_EQ(arrival.at("args").at("nodes").number, 64.0);

  const Json pass = parse_json(lines[1]);
  EXPECT_EQ(pass.at("ph").str, "X");
  EXPECT_DOUBLE_EQ(pass.at("dur").number, 0.002);

  EXPECT_EQ(parse_json(lines[2]).at("ph").str, "C");
}

TEST(JsonlSink, EscapesStringsAndHandlesNonFinite) {
  std::ostringstream out;
  {
    obs::JsonlTraceSink sink(out);
    sink.emit(obs::instant("sim", "weird", 0.0)
                  .arg("text", std::string("a\"b\\c\nd\te"))
                  .arg("inf", std::numeric_limits<double>::infinity())
                  .arg("nan", std::nan("")));
    sink.finish();
  }
  const auto lines = split_lines(out.str());
  ASSERT_EQ(lines.size(), 1u);
  const Json e = parse_json(lines[0]);  // must still parse cleanly
  EXPECT_EQ(e.at("args").at("text").str, "a\"b\\c\nd\te");
}

TEST(ChromeSink, ProducesValidTraceEventArray) {
  std::ostringstream out;
  {
    obs::ChromeTraceSink sink(out);
    sink.emit(obs::instant("job", "job.arrival", 1.5).arg("job",
                                                          std::int64_t{1}));
    sink.emit(obs::span("sched", "sched.pass", 2.0, 0.25));
    sink.emit(obs::counter("sim", "queue.depth", 2.0)
                  .arg("depth", std::int64_t{9}));
    sink.finish();
  }
  const Json trace = parse_json(out.str());
  ASSERT_EQ(trace.type, Json::Type::kArray);
  ASSERT_EQ(trace.array.size(), 3u);

  // Every event carries the keys the trace viewers require.
  for (const Json& e : trace.array) {
    ASSERT_EQ(e.type, Json::Type::kObject);
    EXPECT_TRUE(e.has("name"));
    EXPECT_TRUE(e.has("cat"));
    EXPECT_TRUE(e.has("ph"));
    EXPECT_TRUE(e.has("ts"));
    EXPECT_TRUE(e.has("pid"));
    EXPECT_TRUE(e.has("tid"));
  }
  // Simulation seconds map to trace microseconds.
  EXPECT_DOUBLE_EQ(trace.array[0].at("ts").number, 1.5e6);
  EXPECT_EQ(trace.array[1].at("ph").str, "X");
  EXPECT_DOUBLE_EQ(trace.array[1].at("dur").number, 0.25e6);
  EXPECT_EQ(trace.array[2].at("ph").str, "C");
  EXPECT_DOUBLE_EQ(trace.array[2].at("args").at("depth").number, 9.0);
}

TEST(ChromeSink, EmptyTraceIsAnEmptyArray) {
  std::ostringstream out;
  {
    obs::ChromeTraceSink sink(out);
    sink.finish();
  }
  const Json trace = parse_json(out.str());
  EXPECT_EQ(trace.type, Json::Type::kArray);
  EXPECT_TRUE(trace.array.empty());
}

TEST(SinkFactory, MakesBothFormatsAndRejectsOthers) {
  std::ostringstream out;
  EXPECT_NE(obs::make_sink("jsonl", out), nullptr);
  EXPECT_NE(obs::make_sink("chrome", out), nullptr);
  EXPECT_THROW(obs::make_sink("xml", out), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(MetricsRegistry, CountersGaugesHistograms) {
  obs::MetricsRegistry reg;
  reg.counter("sched.passes").add();
  reg.counter("sched.passes").add(4);
  reg.gauge("queue.depth").set(17.0);
  obs::Histogram& h = reg.histogram("alloc.call_seconds");
  h.add(0.5);
  h.add(2.0);
  h.add(8.0);

  EXPECT_EQ(reg.counter("sched.passes").value(), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge("queue.depth").value(), 17.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.5);
  // Percentiles are bucket estimates but must respect observed bounds.
  EXPECT_GE(h.percentile(50), 0.5);
  EXPECT_LE(h.percentile(50), 8.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 0.5);
  EXPECT_DOUBLE_EQ(h.percentile(100), 8.0);

  EXPECT_EQ(reg.find_counter("sched.passes")->value(), 5u);
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
}

TEST(MetricsRegistry, NameKindsAreDisjoint) {
  obs::MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x"), std::logic_error);
  reg.gauge("y");
  EXPECT_THROW(reg.counter("y"), std::logic_error);
}

TEST(Histogram, PowerOfTwoBucketsCoverTheirRanges) {
  obs::Histogram h;
  h.add(0.0);    // underflow bucket
  h.add(-3.0);   // underflow bucket
  h.add(1.0);    // [1, 2)
  h.add(1.999);  // [1, 2)
  h.add(2.0);    // [2, 4)
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_DOUBLE_EQ(obs::Histogram::bucket_lo(0), 0.0);
  // Find the [1, 2) bucket and check exactly two samples landed there.
  for (int b = 1; b < obs::Histogram::kBuckets; ++b) {
    if (obs::Histogram::bucket_lo(b) == 1.0) {
      EXPECT_DOUBLE_EQ(obs::Histogram::bucket_hi(b), 2.0);
      EXPECT_EQ(h.bucket_count(b), 2u);
    }
  }
  EXPECT_EQ(h.count(), 5u);
}

TEST(MetricsRegistry, JsonSnapshotParsesAndRoundTrips) {
  obs::MetricsRegistry reg;
  reg.counter("jobs.completed").add(42);
  reg.gauge("cluster.node_occupancy").set(0.875);
  reg.histogram("sched.pass_seconds").add(0.001);
  reg.histogram("sched.pass_seconds").add(0.004);

  std::ostringstream out;
  reg.write_json(out);
  const Json snap = parse_json(out.str());

  EXPECT_DOUBLE_EQ(snap.at("counters").at("jobs.completed").number, 42.0);
  EXPECT_DOUBLE_EQ(snap.at("gauges").at("cluster.node_occupancy").number,
                   0.875);
  const Json& h = snap.at("histograms").at("sched.pass_seconds");
  EXPECT_DOUBLE_EQ(h.at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(h.at("sum").number, 0.005);
  EXPECT_DOUBLE_EQ(h.at("min").number, 0.001);
  EXPECT_DOUBLE_EQ(h.at("max").number, 0.004);
  ASSERT_EQ(h.at("buckets").type, Json::Type::kArray);
  double bucket_total = 0.0;
  for (const Json& b : h.at("buckets").array) {
    EXPECT_LT(b.at("lo").number, b.at("hi").number);
    bucket_total += b.at("count").number;
  }
  EXPECT_DOUBLE_EQ(bucket_total, 2.0);  // only non-empty buckets exported
}

TEST(ScopedTimer, RecordsWhenEnabledOnly) {
  obs::Histogram h;
  {
    obs::ScopedTimer t(&h);
    const double first = t.stop();
    EXPECT_GE(first, 0.0);
    EXPECT_DOUBLE_EQ(t.stop(), first);  // idempotent
  }
  EXPECT_EQ(h.count(), 1u);  // destructor after stop() records nothing new

  obs::ScopedTimer off(&h, false);
  EXPECT_DOUBLE_EQ(off.stop(), 0.0);
  EXPECT_EQ(h.count(), 1u);

  obs::ScopedTimer null_hist(nullptr);  // enabled, nowhere to record
  EXPECT_GE(null_hist.stop(), 0.0);
}

// ---------------------------------------------------------------------------
// Cluster occupancy probe

TEST(ClusterProbe, MeasuresOccupancyDirectlyFromState) {
  const FatTree topo = FatTree::from_radix(4);
  ClusterState state(topo);
  const obs::ClusterOccupancy empty = obs::measure_occupancy(state);
  EXPECT_DOUBLE_EQ(empty.node_occupancy, 0.0);
  EXPECT_DOUBLE_EQ(empty.leaf_up_occupancy, 0.0);
  EXPECT_DOUBLE_EQ(empty.l2_up_occupancy, 0.0);
  EXPECT_EQ(empty.free_nodes, topo.total_nodes());

  JigsawAllocator alloc;
  auto a = alloc.allocate(state, JobRequest{1, topo.total_nodes() / 2, 0.0});
  ASSERT_TRUE(a.has_value());
  state.apply(*a);
  const obs::ClusterOccupancy half = obs::measure_occupancy(state);
  EXPECT_GT(half.node_occupancy, 0.0);
  EXPECT_EQ(half.free_nodes, topo.total_nodes() - a->allocated_nodes());
}

// ---------------------------------------------------------------------------
// End-to-end: a simulation run with observers attached

Trace obs_trace() {
  Trace trace;
  trace.name = "obs";
  trace.jobs = {
      Job{0, 0.0, 10, 100.0, 1.0}, Job{1, 0.0, 20, 50.0, 1.0},
      Job{2, 10.0, 64, 30.0, 1.0}, Job{3, 20.0, 4, 200.0, 1.0},
      Job{4, 30.0, 1, 10.0, 1.0},
  };
  normalize(trace);
  return trace;
}

TEST(SimulatorObs, EmitsLifecycleEventsAndMetrics) {
  const FatTree topo = FatTree::from_radix(8);
  const Trace trace = obs_trace();
  JigsawAllocator alloc;

  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  obs::MetricsRegistry reg;
  SimConfig config;
  config.obs.sink = &sink;
  config.obs.metrics = &reg;

  const SimMetrics m = simulate(topo, alloc, trace, config);
  sink.finish();
  ASSERT_EQ(m.completed, trace.jobs.size());

  std::map<std::string, int> by_name;
  const auto lines = split_lines(out.str());
  for (const auto& line : lines) {
    const Json e = parse_json(line);  // every line must be valid JSON
    by_name[e.at("name").str] += 1;
  }
  const int jobs = static_cast<int>(trace.jobs.size());
  EXPECT_EQ(by_name["sim.run_start"], 1);
  EXPECT_EQ(by_name["sim.run_end"], 1);
  EXPECT_EQ(by_name["job.arrival"], jobs);
  EXPECT_EQ(by_name["job.start"], jobs);
  EXPECT_EQ(by_name["job.completion"], jobs);
  EXPECT_GT(by_name["sched.pass"], 0);
  EXPECT_GT(by_name["alloc.attempt"], 0);

  // The metrics registry agrees with both the events and SimMetrics.
  EXPECT_EQ(reg.counter("jobs.completed").value(),
            static_cast<std::uint64_t>(m.completed));
  EXPECT_EQ(reg.counter("jobs.started").value(),
            static_cast<std::uint64_t>(jobs));
  EXPECT_EQ(reg.counter("sched.passes").value(), m.sched_passes);
  EXPECT_EQ(reg.counter("alloc.calls").value(), m.allocate_calls);
  EXPECT_EQ(reg.counter("alloc.search_steps").value(), m.search_steps);
  EXPECT_EQ(reg.histogram("sched.pass_seconds").count(), m.sched_passes);
  EXPECT_GT(reg.histogram("jobs.wait_seconds").count(), 0u);
  // Occupancy gauges were sampled and the run ended with an empty machine.
  EXPECT_DOUBLE_EQ(reg.gauge("cluster.node_occupancy").value(), 0.0);
  EXPECT_DOUBLE_EQ(reg.gauge("queue.depth").value(), 0.0);
}

TEST(SimulatorObs, MetricsOnlyRunNeedsNoSink) {
  const FatTree topo = FatTree::from_radix(8);
  const Trace trace = obs_trace();
  JigsawAllocator alloc;

  obs::MetricsRegistry reg;
  SimConfig config;
  config.obs.metrics = &reg;
  const SimMetrics m = simulate(topo, alloc, trace, config);
  EXPECT_EQ(reg.counter("jobs.completed").value(),
            static_cast<std::uint64_t>(m.completed));
}

TEST(SimulatorObs, DefaultNullContextMatchesInstrumentedRun) {
  const FatTree topo = FatTree::from_radix(8);
  const Trace trace = obs_trace();
  JigsawAllocator alloc_plain;
  JigsawAllocator alloc_traced;

  const SimMetrics plain = simulate(topo, alloc_plain, trace, SimConfig{});

  std::ostringstream out;
  obs::ChromeTraceSink sink(out);
  obs::MetricsRegistry reg;
  SimConfig config;
  config.obs.sink = &sink;
  config.obs.metrics = &reg;
  const SimMetrics traced = simulate(topo, alloc_traced, trace, config);
  sink.finish();
  parse_json(out.str());  // chrome output of a real run is valid JSON

  // Observation must not perturb the simulation itself.
  EXPECT_EQ(plain.completed, traced.completed);
  EXPECT_DOUBLE_EQ(plain.makespan, traced.makespan);
  EXPECT_DOUBLE_EQ(plain.steady_utilization, traced.steady_utilization);
  EXPECT_EQ(plain.allocate_calls, traced.allocate_calls);
  EXPECT_EQ(plain.search_steps, traced.search_steps);
}

// ---------------------------------------------------------------------------
// Table JSON export (--json-out)

TEST(TableJson, EmitsNumbersAndEscapedStrings) {
  TablePrinter table({"Scheme", "Utilization %", "Note"});
  table.add_row({"Jigsaw", "95.9", "ok"});
  table.add_row({"LC+S", "-1.5e2", "quote\"here"});
  table.add_row({"TA", "1e", "07"});  // neither is a JSON number

  std::ostringstream out;
  table.write_json(out, "fig6");
  const Json doc = parse_json(out.str());
  EXPECT_EQ(doc.at("name").str, "fig6");
  ASSERT_EQ(doc.at("headers").array.size(), 3u);
  ASSERT_EQ(doc.at("rows").array.size(), 3u);

  const Json& row0 = doc.at("rows").array[0];
  EXPECT_EQ(row0.at("Scheme").str, "Jigsaw");
  EXPECT_EQ(row0.at("Utilization %").type, Json::Type::kNumber);
  EXPECT_DOUBLE_EQ(row0.at("Utilization %").number, 95.9);

  const Json& row1 = doc.at("rows").array[1];
  EXPECT_DOUBLE_EQ(row1.at("Utilization %").number, -150.0);
  EXPECT_EQ(row1.at("Note").str, "quote\"here");

  // "1e" (bad exponent) and "07" (leading zero) must stay strings.
  const Json& row2 = doc.at("rows").array[2];
  EXPECT_EQ(row2.at("Utilization %").type, Json::Type::kString);
  EXPECT_EQ(row2.at("Note").type, Json::Type::kString);
}

}  // namespace
}  // namespace jigsaw
