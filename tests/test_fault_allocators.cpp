// Degraded-tree allocator sweep: every scheme, asked to place jobs on a
// tree with randomly failed nodes and wires (including failures injected
// mid-stream), must never grant a placement touching failed hardware —
// and every Jigsaw placement must still certify rearrangeable non-blocking
// on the surviving sub-tree (structural conditions + constructive routing
// + one-flow-per-link verification).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/baseline.hpp"
#include "core/conditions.hpp"
#include "core/jigsaw_allocator.hpp"
#include "core/laas.hpp"
#include "core/lc.hpp"
#include "core/ta.hpp"
#include "defrag/defrag.hpp"
#include "fault/injector.hpp"
#include "routing/rnb_router.hpp"
#include "topology/cluster_state.hpp"
#include "util/rng.hpp"

namespace jigsaw {
namespace {

struct SchemeCase {
  std::string label;
  AllocatorPtr allocator;
  double bandwidth = 0.0;  // per-job demand; > 0 exercises LC+S sharing
};

std::vector<SchemeCase> all_schemes() {
  std::vector<SchemeCase> schemes;
  schemes.push_back({"Jigsaw", std::make_unique<JigsawAllocator>(), 0.0});
  schemes.push_back({"LaaS", std::make_unique<LaasAllocator>(), 0.0});
  schemes.push_back({"TA", std::make_unique<TaAllocator>(), 0.0});
  schemes.push_back(
      {"LC+S", std::make_unique<LeastConstrainedAllocator>(true), 1.0});
  schemes.push_back({"Baseline", std::make_unique<BaselineAllocator>(), 0.0});
  return schemes;
}

void fail_random_resources(const FatTree& topo, ClusterState& state,
                           Rng& rng, int nodes, int leaf_wires,
                           int l2_wires) {
  for (int k = 0; k < nodes; ++k) {
    state.fail_node(static_cast<NodeId>(
        rng.below(static_cast<std::uint64_t>(topo.total_nodes()))));
  }
  for (int k = 0; k < leaf_wires; ++k) {
    state.fail_leaf_up(
        static_cast<LeafId>(
            rng.below(static_cast<std::uint64_t>(topo.total_leaves()))),
        static_cast<int>(
            rng.below(static_cast<std::uint64_t>(topo.l2_per_tree()))));
  }
  for (int k = 0; k < l2_wires; ++k) {
    state.fail_l2_up(
        static_cast<TreeId>(
            rng.below(static_cast<std::uint64_t>(topo.trees()))),
        static_cast<int>(
            rng.below(static_cast<std::uint64_t>(topo.l2_per_tree()))),
        static_cast<int>(
            rng.below(static_cast<std::uint64_t>(topo.spines_per_group()))));
  }
}

void certify_rnb(const FatTree& topo, const Allocation& a, Rng& rng) {
  const ConditionReport report = check_full_bandwidth(topo, a);
  ASSERT_TRUE(report.ok) << "job " << a.job << ": " << report.error;
  if (a.nodes.size() < 2) return;
  const std::vector<Flow> perm = random_permutation(a, rng);
  const RoutingOutcome outcome = route_permutation(topo, a, perm);
  ASSERT_TRUE(outcome.ok) << "job " << a.job << ": " << outcome.error;
  const std::string violation =
      verify_one_flow_per_link(topo, a, outcome.routes);
  ASSERT_TRUE(violation.empty()) << "job " << a.job << ": " << violation;
}

TEST(DegradedAllocators, NoGrantEverTouchesFailedHardware) {
  const FatTree topo = FatTree::from_radix(8);  // 128 nodes
  for (SchemeCase& scheme : all_schemes()) {
    SCOPED_TRACE(scheme.label);
    ClusterState state(topo);
    Rng rng(0xDE6124DEDULL);
    fail_random_resources(topo, state, rng, /*nodes=*/12, /*leaf_wires=*/8,
                          /*l2_wires=*/6);

    std::vector<Allocation> held;
    JobId next_job = 1;
    std::size_t grants = 0;
    for (int iter = 0; iter < 250; ++iter) {
      const int size = static_cast<int>(1 + rng.below(32));
      const auto alloc = scheme.allocator->allocate(
          state, JobRequest{next_job, size, scheme.bandwidth});
      if (alloc.has_value()) {
        ASSERT_FALSE(fault::allocation_on_failed_hardware(state, *alloc))
            << "job " << next_job << " (" << size << " nodes) landed on "
            << "failed hardware";
        ASSERT_TRUE(state.can_apply(*alloc));
        if (scheme.label == "Jigsaw") certify_rnb(topo, *alloc, rng);
        state.apply(*alloc);
        held.push_back(*alloc);
        ++next_job;
        ++grants;
      }
      // Churn: occasional release, occasional mid-stream failure/repair
      // so the allocator faces a shifting surviving sub-tree.
      if (!held.empty() && rng.chance(0.35)) {
        const std::size_t pick = rng.below(held.size());
        state.release(held[pick]);
        held[pick] = std::move(held.back());
        held.pop_back();
      }
      if (rng.chance(0.10)) {
        state.fail_node(static_cast<NodeId>(
            rng.below(static_cast<std::uint64_t>(topo.total_nodes()))));
      }
      if (rng.chance(0.06)) {
        state.repair_node(static_cast<NodeId>(
            rng.below(static_cast<std::uint64_t>(topo.total_nodes()))));
      }
      ASSERT_TRUE(state.check_invariants());
    }
    // The sweep must have exercised real placements, not vacuous denials.
    EXPECT_GT(grants, 50u) << scheme.label;
  }
}

TEST(DegradedAllocators, JigsawFillsTheSurvivingSubtreeExactly) {
  // Fail one whole leaf switch; Jigsaw must still pack uniform jobs onto
  // everything that survives, every placement certified RNB.
  const FatTree topo = FatTree::from_radix(8);
  ClusterState state(topo);
  const JigsawAllocator allocator;
  Rng rng(99);
  const auto dead = fault::expand(
      topo, fault::FaultTarget{fault::ResourceKind::kLeafSwitch, 0, 0, 0});
  fault::apply_failure(state, dead);
  const int survivors = topo.total_nodes() - topo.nodes_per_leaf();
  ASSERT_EQ(state.total_free_nodes(), survivors);

  JobId job = 1;
  int placed = 0;
  while (true) {
    const auto alloc =
        allocator.allocate(state, JobRequest{job, 4, 0.0});
    if (!alloc.has_value()) break;
    ASSERT_FALSE(fault::allocation_on_failed_hardware(state, *alloc));
    certify_rnb(topo, *alloc, rng);
    state.apply(*alloc);
    placed += 4;
    ++job;
  }
  // 4-node jobs tile leaves exactly, so the surviving capacity fills.
  EXPECT_EQ(placed, survivors);
  EXPECT_EQ(state.total_free_nodes(), 0);
}

// ---------------------------------------------------------------------------
// Migration atomicity: a defrag plan either applies completely or leaves
// the cluster bit-identical to the pre-plan state — under random load,
// injected destination faults, and destinations stolen between planning
// and execution. No partial migration, no double-free, no RNB violation.
// ---------------------------------------------------------------------------

bool raw_states_equal(const ClusterState::RawState& a,
                      const ClusterState::RawState& b) {
  return a.free_nodes == b.free_nodes && a.free_leaf_up == b.free_leaf_up &&
         a.free_l2_up == b.free_l2_up && a.healthy_nodes == b.healthy_nodes &&
         a.healthy_leaf_up == b.healthy_leaf_up &&
         a.healthy_l2_up == b.healthy_l2_up &&
         a.residual_leaf_up == b.residual_leaf_up &&
         a.residual_l2_up == b.residual_l2_up && a.revision == b.revision;
}

TEST(DefragRollback, AbortedPlansRollBackToThePrePlanStateExactly) {
  const FatTree topo = FatTree::from_radix(8);  // 128 nodes
  std::size_t trials = 0;
  std::size_t plans_found = 0;
  std::size_t fault_aborts = 0;
  std::size_t stolen_aborts = 0;
  std::size_t applied = 0;

  std::uint64_t scheme_index = 0;
  for (SchemeCase& scheme : all_schemes()) {
    SCOPED_TRACE(scheme.label);
    Rng rng(0xDEF4A6000ULL + scheme_index++);
    ClusterState state(topo);
    std::vector<Allocation> held;
    JobId next_job = 1;

    for (int iter = 0; iter < 60; ++iter) {
      ++trials;
      // Churn toward a fragmented, mostly-full cluster.
      for (int k = 0; k < 4; ++k) {
        const int size = static_cast<int>(1 + rng.below(12));
        const auto alloc = scheme.allocator->allocate(
            state, JobRequest{next_job, size, scheme.bandwidth});
        if (alloc.has_value()) {
          state.apply(*alloc);
          held.push_back(*alloc);
          ++next_job;
        }
      }
      while (!held.empty() && rng.chance(0.25)) {
        const std::size_t pick = rng.below(held.size());
        state.release(held[pick]);
        held[pick] = std::move(held.back());
        held.pop_back();
      }
      if (held.empty()) continue;

      // `held` is stable for the rest of the iteration, so candidate
      // pointers into it stay valid through plan().
      std::vector<MigrationCandidate> candidates;
      for (const Allocation& a : held) {
        candidates.push_back(MigrationCandidate{a.job, &a, a.bandwidth});
      }
      DefragConfig config;
      config.max_moves = static_cast<int>(1 + rng.below(3));
      config.max_candidates = 8;
      config.max_probes = 64;
      const DefragPlanner planner(*scheme.allocator, config);
      const JobRequest head{100000 + static_cast<JobId>(trials),
                            static_cast<int>(4 + rng.below(24)),
                            scheme.bandwidth};

      const ClusterState::RawState before = state.raw_state();
      const auto plan = planner.plan(state, head, candidates);
      // Planning is probe-only whatever it returns: every transaction
      // rolled back, revision counter included.
      ASSERT_TRUE(raw_states_equal(state.raw_state(), before));
      ASSERT_TRUE(state.check_invariants());
      if (!plan.has_value()) continue;
      ++plans_found;

      const std::uint64_t variant = rng.below(3);
      if (variant == 0) {
        // Injected fault on a destination node between planning and
        // execution: the apply must refuse and roll back completely.
        const NodeId dead = plan->moves[0].to.nodes[0];
        state.fail_node(dead);
        const ClusterState::RawState degraded = state.raw_state();
        ASSERT_FALSE(apply_plan_moves(state, *plan));
        ASSERT_TRUE(raw_states_equal(state.raw_state(), degraded));
        ASSERT_TRUE(state.check_invariants());
        state.repair_node(dead);
        ++fault_aborts;
        continue;
      }
      if (variant == 1) {
        // A rival grant steals a destination node first (service-mode
        // race): abort, bit-identical rollback, rival unharmed.
        Allocation rival;
        rival.job = 900000 + static_cast<JobId>(trials);
        rival.requested_nodes = 1;
        rival.nodes = {plan->moves[0].to.nodes[0]};
        if (state.can_apply(rival)) {
          state.apply(rival);
          const ClusterState::RawState stolen = state.raw_state();
          ASSERT_FALSE(apply_plan_moves(state, *plan));
          ASSERT_TRUE(raw_states_equal(state.raw_state(), stolen));
          ASSERT_TRUE(state.check_invariants());
          state.release(rival);
          ++stolen_aborts;
          continue;
        }
        // Destination overlaps a victim's own partition — fall through
        // to the clean apply.
      }
      // Clean execution: all moves land, the head fits afterwards, and
      // Jigsaw destinations stay RNB-certifiable.
      ASSERT_TRUE(apply_plan_moves(state, *plan));
      ASSERT_TRUE(state.check_invariants());
      for (const MigrationMove& m : plan->moves) {
        ASSERT_FALSE(fault::allocation_on_failed_hardware(state, m.to));
        if (scheme.label == "Jigsaw") certify_rnb(topo, m.to, rng);
        for (Allocation& h : held) {
          if (h.job == m.job) h = m.to;
        }
      }
      EXPECT_TRUE(
          scheme.allocator->allocate(state, head).has_value())
          << "plan applied but head still unplaceable";
      ++applied;
    }
  }
  // The sweep must exercise every outcome, not vacuously skip.
  EXPECT_GE(trials, 200u);
  EXPECT_GT(plans_found, 30u);
  EXPECT_GT(fault_aborts, 5u);
  EXPECT_GT(stolen_aborts, 5u);
  EXPECT_GT(applied, 10u);
}

}  // namespace
}  // namespace jigsaw
