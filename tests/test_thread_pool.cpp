// Unit tests for the persistent probe pool behind --search-threads.
//
// The pool's contract (util/thread_pool.hpp): run(body) invokes body(lane)
// exactly once per lane, with lane 0 on the calling thread; workers
// persist across run() calls; a run() issued from inside a pool region
// (or concurrently with another dispatch) degrades to an inline body(0)
// instead of deadlocking.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace jigsaw {
namespace {

TEST(ThreadPool, ReportsLaneCount) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.lanes(), 4);
  ThreadPool one(1);
  EXPECT_EQ(one.lanes(), 1);
}

TEST(ThreadPool, SingleLaneRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  pool.run([&](int lane) {
    EXPECT_EQ(lane, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, FansOutToEveryLaneExactlyOnce) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::atomic<int>> hits(4);
  std::atomic<bool> lane0_on_caller{false};
  pool.run([&](int lane) {
    ASSERT_GE(lane, 0);
    ASSERT_LT(lane, 4);
    hits[static_cast<std::size_t>(lane)].fetch_add(1);
    if (lane == 0 && std::this_thread::get_id() == caller) {
      lane0_on_caller.store(true);
    }
  });
  for (int lane = 0; lane < 4; ++lane) {
    EXPECT_EQ(hits[static_cast<std::size_t>(lane)].load(), 1)
        << "lane " << lane;
  }
  EXPECT_TRUE(lane0_on_caller.load());
}

TEST(ThreadPool, WorkersPersistAcrossManyRuns) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 500; ++round) {
    pool.run([&](int) { total.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(total.load(), 500 * 3);
}

TEST(ThreadPool, NestedRunDegradesToInline) {
  ThreadPool pool(4);
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  pool.run([&](int) {
    outer.fetch_add(1);
    // Re-entrant dispatch would deadlock the worker generation; the pool
    // must detect it and run the nested body inline as lane 0, once.
    pool.run([&](int lane) {
      EXPECT_EQ(lane, 0);
      inner.fetch_add(1);
    });
  });
  EXPECT_EQ(outer.load(), 4);
  EXPECT_EQ(inner.load(), 4);  // one inline call per nested run()
}

TEST(ThreadPool, ConcurrentExternalCallersNeverLoseWork) {
  // Several threads hammering run() on one pool: whoever wins the
  // dispatch slot fans out, the rest degrade inline. Every run() call
  // must invoke its body at least once (inline) and at most lanes()
  // times (full fan-out) — and nothing may deadlock or race. This is
  // the case the TSAN CI job exists for.
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr int kRunsPerCaller = 200;
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&]() {
      for (int i = 0; i < kRunsPerCaller; ++i) {
        pool.run(
            [&](int) { total.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_GE(total.load(), kCallers * kRunsPerCaller);
  EXPECT_LE(total.load(), kCallers * kRunsPerCaller * pool.lanes());
}

}  // namespace
}  // namespace jigsaw
