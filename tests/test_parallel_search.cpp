// Equivalence guards for the parallel placement search.
//
// --search-threads N must never change a scheduling decision: the
// min-index reduction in core/parallel_search.hpp commits exactly the
// candidate the sequential scan would have, with the same budget ledger.
// These tests pin that at three levels: the first_feasible() engine
// against synthetic probes, a golden Synth-16 run (all five schemes,
// 2000 jobs, constants dumped with %.17g from the sequential path — the
// companion of tests/test_txn_equivalence.cpp), and a randomized
// property sweep over traces, schemes, thread counts, step budgets, and
// fault schedules comparing metrics and every granted allocation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/baseline.hpp"
#include "core/jigsaw_allocator.hpp"
#include "core/laas.hpp"
#include "core/lc.hpp"
#include "core/parallel_search.hpp"
#include "core/ta.hpp"
#include "fault/failure_schedule.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace jigsaw {
namespace {

std::string fmt17(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

// ---- the engine against synthetic probes --------------------------------

TEST(ParallelSearch, FirstFeasibleMatchesSequentialOnRandomProbes) {
  ThreadPool pool(4);
  const SearchExec par{&pool, 4};
  Rng rng(123);
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t count = rng.below(40);
    std::vector<std::uint64_t> costs(count);
    std::vector<unsigned char> feas(count);
    for (std::size_t i = 0; i < count; ++i) {
      costs[i] = rng.below(6);
      feas[i] = rng.below(5) == 0 ? 1 : 0;
    }
    // A find_* probe run under budget b executes a prefix of its full
    // step sequence: it either completes (consuming its full cost) or
    // truncates at b and reports infeasible. Model exactly that.
    const auto probe = [&](int, std::size_t i, std::uint64_t& b) {
      const std::uint64_t take = std::min(costs[i], b);
      b -= take;
      if (take < costs[i]) return false;
      return feas[i] != 0;
    };
    std::uint64_t budget_seq = 1 + rng.below(60);
    std::uint64_t budget_par = budget_seq;
    const FirstFeasible seq =
        first_feasible(SearchExec{}, count, budget_seq, probe);
    const FirstFeasible parallel =
        first_feasible(par, count, budget_par, probe);
    ASSERT_EQ(seq.winner, parallel.winner) << "trial " << trial;
    ASSERT_EQ(seq.exhausted, parallel.exhausted) << "trial " << trial;
    ASSERT_EQ(budget_seq, budget_par) << "trial " << trial;
  }
}

// ---- whole-simulation equivalence ---------------------------------------

enum class Scheme { kBaseline, kLcs, kJigsaw, kLaas, kTa };

constexpr Scheme kAllSchemes[] = {Scheme::kBaseline, Scheme::kLcs,
                                  Scheme::kJigsaw, Scheme::kLaas,
                                  Scheme::kTa};

AllocatorPtr make(Scheme scheme, std::uint64_t budget,
                  const SearchExec& exec) {
  AllocatorPtr ptr;
  switch (scheme) {
    case Scheme::kBaseline: ptr = std::make_unique<BaselineAllocator>(); break;
    case Scheme::kLcs:
      ptr = std::make_unique<LeastConstrainedAllocator>(true, budget);
      break;
    case Scheme::kJigsaw:
      ptr = std::make_unique<JigsawAllocator>(budget);
      break;
    case Scheme::kLaas: ptr = std::make_unique<LaasAllocator>(budget); break;
    case Scheme::kTa: ptr = std::make_unique<TaAllocator>(); break;
  }
  ptr->set_search_exec(exec);
  return ptr;
}

/// Everything a grant commits, captured through SimConfig::grant_audit.
/// Identical runs must grant identical resources at identical times.
struct GrantRecord {
  double now = 0.0;
  JobId job = kNoJob;
  int requested = 0;
  double bandwidth = 0.0;
  std::vector<NodeId> nodes;
  std::vector<LeafWire> leaf_wires;
  std::vector<L2Wire> l2_wires;
  friend bool operator==(const GrantRecord&, const GrantRecord&) = default;
};

SimMetrics run_once(const FatTree& topo, const Trace& trace, Scheme scheme,
                    std::uint64_t budget, const SearchExec& exec,
                    const fault::FailureSchedule* failures,
                    std::vector<GrantRecord>* grants) {
  const AllocatorPtr alloc = make(scheme, budget, exec);
  SimConfig config;
  config.failures = failures;
  config.grant_audit = [&](double now, const Allocation& a,
                           const ClusterState&) {
    GrantRecord r;
    r.now = now;
    r.job = a.job;
    r.requested = a.requested_nodes;
    r.bandwidth = a.bandwidth;
    r.nodes = a.nodes;
    r.leaf_wires = a.leaf_wires;
    r.l2_wires = a.l2_wires;
    grants->push_back(std::move(r));
  };
  return simulate(topo, *alloc, trace, config);
}

/// Bit-identical on every deterministic field; the wall-clock fields
/// (sched_wall_seconds, mean_sched_time_per_job) are excluded — no two
/// runs reproduce them, parallel or not.
void expect_metrics_identical(const SimMetrics& a, const SimMetrics& b) {
  EXPECT_EQ(fmt17(a.steady_utilization), fmt17(b.steady_utilization));
  EXPECT_EQ(fmt17(a.steady_waste), fmt17(b.steady_waste));
  EXPECT_EQ(fmt17(a.steady_start), fmt17(b.steady_start));
  EXPECT_EQ(fmt17(a.steady_end), fmt17(b.steady_end));
  EXPECT_EQ(fmt17(a.makespan), fmt17(b.makespan));
  EXPECT_EQ(fmt17(a.mean_turnaround_all), fmt17(b.mean_turnaround_all));
  EXPECT_EQ(fmt17(a.mean_turnaround_large), fmt17(b.mean_turnaround_large));
  EXPECT_EQ(fmt17(a.mean_wait), fmt17(b.mean_wait));
  EXPECT_EQ(fmt17(a.p50_turnaround), fmt17(b.p50_turnaround));
  EXPECT_EQ(fmt17(a.p90_turnaround), fmt17(b.p90_turnaround));
  EXPECT_EQ(fmt17(a.p99_turnaround), fmt17(b.p99_turnaround));
  EXPECT_EQ(a.large_jobs, b.large_jobs);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.sched_passes, b.sched_passes);
  EXPECT_EQ(a.allocate_calls, b.allocate_calls);
  EXPECT_EQ(a.search_steps, b.search_steps);
  EXPECT_EQ(a.budget_exhaustions, b.budget_exhaustions);
  EXPECT_EQ(a.fault_events, b.fault_events);
  EXPECT_EQ(a.resources_failed, b.resources_failed);
  EXPECT_EQ(a.resources_repaired, b.resources_repaired);
  EXPECT_EQ(a.jobs_killed, b.jobs_killed);
  EXPECT_EQ(a.jobs_requeued, b.jobs_requeued);
  EXPECT_EQ(a.grants_rejected, b.grants_rejected);
  EXPECT_EQ(a.abandoned, b.abandoned);
}

// Golden acceptance run: all five schemes on Synth-16 at 2000 jobs,
// --search-threads 4 vs sequential. The pinned constants were dumped
// with %.17g from the sequential path; both executions must reproduce
// them bit-for-bit, and grant-for-grant.
TEST(ParallelSearchGolden, Synth16Threads4MatchesSequential) {
  Trace trace = named_synthetic("Synth-16", 2000);
  Rng rng(0xBADC0FFEEULL);
  assign_bandwidth_classes(trace, rng);
  const FatTree topo = FatTree::from_radix(16);

  ThreadPool pool(4);
  const SearchExec par{&pool, 4};
  constexpr std::uint64_t kDefaultBudget = 1ull << 24;

  struct Golden {
    Scheme scheme;
    const char* steady_utilization;
    const char* makespan;
    const char* mean_turnaround_all;
    std::uint64_t search_steps;
    std::uint64_t allocate_calls;
  };
  const Golden goldens[] = {
      {Scheme::kBaseline, "0.98848489293726394", "50972.627913662196",
       "24738.700639499279", 3227630, 114521},
      {Scheme::kLcs, "0.95733164553366179", "52720.457253746245",
       "25122.045235523306", 2153967, 114434},
      {Scheme::kJigsaw, "0.95387521249130025", "52987.266386010502",
       "24783.906333569212", 473151, 114560},
      {Scheme::kLaas, "0.90562891769691156", "55766.359690644669",
       "26160.731744023666", 384288, 114790},
      {Scheme::kTa, "0.86383506990582326", "58256.486995265703",
       "27573.175480554226", 2463403, 114392},
  };

  for (const Golden& g : goldens) {
    std::vector<GrantRecord> seq_grants;
    std::vector<GrantRecord> par_grants;
    const SimMetrics seq = run_once(topo, trace, g.scheme, kDefaultBudget,
                                    SearchExec{}, nullptr, &seq_grants);
    const SimMetrics parallel = run_once(topo, trace, g.scheme,
                                         kDefaultBudget, par, nullptr,
                                         &par_grants);
    SCOPED_TRACE(make(g.scheme, kDefaultBudget, SearchExec{})->name());
    for (const SimMetrics* m : {&seq, &parallel}) {
      EXPECT_EQ(fmt17(m->steady_utilization), g.steady_utilization);
      EXPECT_EQ(fmt17(m->makespan), g.makespan);
      EXPECT_EQ(fmt17(m->mean_turnaround_all), g.mean_turnaround_all);
      EXPECT_EQ(m->search_steps, g.search_steps);
      EXPECT_EQ(m->allocate_calls, g.allocate_calls);
    }
    expect_metrics_identical(seq, parallel);
    ASSERT_EQ(seq_grants.size(), par_grants.size());
    for (std::size_t i = 0; i < seq_grants.size(); ++i) {
      ASSERT_TRUE(seq_grants[i] == par_grants[i]) << "grant " << i;
    }
  }
}

// ---- randomized property sweep ------------------------------------------

TEST(SearchDeterminismProperty, RandomTracesMatchSequentialAcrossThreads) {
  ThreadPool pool2(2);
  ThreadPool pool4(4);
  ThreadPool pool8(8);
  const SearchExec execs[] = {{&pool2, 2}, {&pool4, 4}, {&pool8, 8}};

  constexpr int kTrials = 210;
  int fault_trials = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(0xFEEDBEEF + static_cast<std::uint64_t>(trial) * 7919);
    const int radix = 8 + 2 * static_cast<int>(rng.below(3));  // 8/10/12
    const FatTree topo = FatTree::from_radix(radix);
    SyntheticParams params;
    params.jobs = 40 + rng.below(80);
    params.mean_size = 6.0 + static_cast<double>(rng.below(14));
    params.max_size = topo.total_nodes() / 2;  // must fit the cluster
    params.seed = rng();
    Trace trace = synthetic_trace(params);
    Rng bw_rng(rng());
    assign_bandwidth_classes(trace, bw_rng);

    // Small budgets on every third trial force the exhaustion path
    // through the budget-ledger replay; TA ignores the budget.
    const std::uint64_t budget =
        trial % 3 == 0 ? 64 + rng.below(4096) : 1ull << 24;
    const Scheme scheme = kAllSchemes[trial % 5];
    const SearchExec exec = execs[trial % 3];

    // Every fourth trial runs on failing hardware; both executions see
    // the same schedule.
    fault::FailureSchedule schedule;
    const fault::FailureSchedule* failures = nullptr;
    if (trial % 4 == 0) {
      fault::RandomFaultConfig fc;
      fc.horizon = 4000.0;
      fc.node_mtbf = 300.0 + static_cast<double>(rng.below(2000));
      fc.wire_mtbf = fc.node_mtbf * 2.0;
      fc.mttr = 600.0;
      fc.seed = rng();
      schedule = fault::make_random_schedule(topo, fc);
      failures = &schedule;
      ++fault_trials;
    }

    std::vector<GrantRecord> seq_grants;
    std::vector<GrantRecord> par_grants;
    const SimMetrics seq = run_once(topo, trace, scheme, budget,
                                    SearchExec{}, failures, &seq_grants);
    const SimMetrics parallel =
        run_once(topo, trace, scheme, budget, exec, failures, &par_grants);

    SCOPED_TRACE("trial " + std::to_string(trial) + " scheme " +
                 make(scheme, budget, SearchExec{})->name() + " threads " +
                 std::to_string(exec.threads) + " budget " +
                 std::to_string(budget) +
                 (failures != nullptr ? " +faults" : ""));
    expect_metrics_identical(seq, parallel);
    ASSERT_EQ(seq_grants.size(), par_grants.size());
    for (std::size_t i = 0; i < seq_grants.size(); ++i) {
      ASSERT_TRUE(seq_grants[i] == par_grants[i]) << "grant " << i;
    }
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
  EXPECT_GE(fault_trials, 50);
}

}  // namespace
}  // namespace jigsaw
