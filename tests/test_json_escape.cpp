// JSON string escaping audit: hostile strings must round-trip.
//
// Every JSON byte the repo emits — trace events, protocol replies, WAL
// payloads, the Prometheus scrape's JSON wrapper — funnels through
// obs::json_escape, and everything the service reads back goes through
// service::parse_json. A job name is user input (the shell sends fault
// targets, the protocol accepts arbitrary ids), so the pair must
// round-trip control characters, quotes, backslashes, embedded NULs,
// and non-ASCII UTF-8 without corruption, and the parser must reject
// what the writer would never produce (raw control bytes).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/sink.hpp"
#include "service/json.hpp"

namespace jigsaw {
namespace {

TEST(JsonEscape, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(obs::json_escape("a\rb"), "a\\rb");
  EXPECT_EQ(obs::json_escape("a\tb"), "a\\tb");
  // Control characters without a short form become \u00XX.
  EXPECT_EQ(obs::json_escape(std::string("a\0b", 3)), "a\\u0000b");
  EXPECT_EQ(obs::json_escape("a\x01z"), "a\\u0001z");
  EXPECT_EQ(obs::json_escape("a\bz"), "a\\u0008z");
  EXPECT_EQ(obs::json_escape("a\fz"), "a\\u000cz");
  EXPECT_EQ(obs::json_escape("a\x1fz"), "a\\u001fz");
}

TEST(JsonEscape, PassesNonAsciiUtf8Through) {
  // High bytes are valid inside JSON strings; the escaper must not
  // sign-extend them into bogus \uFFxx escapes or mangle multi-byte
  // sequences.
  const std::string utf8 = "j\xC3\xB6rb \xE2\x98\x83";  // "jörb ☃"
  EXPECT_EQ(obs::json_escape(utf8), utf8);
  const std::string high = "\x80\xFF";
  EXPECT_EQ(obs::json_escape(high), high);
}

std::vector<std::string> hostile_names() {
  return {
      "plain-job",
      "quote\"inside",
      "back\\slash",
      "new\nline and\ttab",
      "carriage\rreturn",
      std::string("embedded\0nul", 12),
      "\x01\x02\x03\x1f",
      "j\xC3\xB6rb \xE2\x98\x83 \xF0\x9F\x92\xA1",  // 2-, 3-, 4-byte UTF-8
      "mixed \"\\\n\x01\xC3\xA9 end",
      "",
  };
}

TEST(JsonEscape, HostileNamesRoundTripThroughTheParser) {
  for (const std::string& name : hostile_names()) {
    SCOPED_TRACE(obs::json_escape(name));
    const std::string doc = "{\"name\":\"" + obs::json_escape(name) + "\"}";
    service::JsonValue parsed;
    std::string error;
    ASSERT_TRUE(service::parse_json(doc, &parsed, &error)) << error;
    const service::JsonValue* value = parsed.find("name");
    ASSERT_NE(value, nullptr);
    ASSERT_TRUE(value->is_string());
    EXPECT_EQ(value->as_string(), name);
  }
}

TEST(JsonEscape, WriterRoundTripsHostileKeysAndValues) {
  // The service writer (write_json/to_json) shares the escaper; hostile
  // content must survive a full value -> text -> value cycle, keys
  // included.
  for (const std::string& name : hostile_names()) {
    SCOPED_TRACE(obs::json_escape(name));
    service::JsonValue::Object obj;
    obj.emplace_back("name", service::JsonValue(name));
    obj.emplace_back(name, service::JsonValue(42.0));
    const service::JsonValue original{std::move(obj)};
    const std::string text = service::to_json(original);
    service::JsonValue reparsed;
    std::string error;
    ASSERT_TRUE(service::parse_json(text, &reparsed, &error))
        << error << " in " << text;
    EXPECT_EQ(reparsed, original);
  }
}

TEST(JsonEscape, ParserRejectsRawControlBytes) {
  // The writer always escapes < 0x20; a raw control byte in the input
  // is malformed and must fail loudly, not pass through.
  service::JsonValue parsed;
  std::string error;
  EXPECT_FALSE(
      service::parse_json(std::string("{\"name\":\"a\x01b\"}"), &parsed,
                          &error));
  EXPECT_FALSE(
      service::parse_json(std::string("{\"name\":\"a\nb\"}"), &parsed,
                          &error));
}

TEST(JsonEscape, ParserDecodesUnicodeEscapes) {
  service::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(service::parse_json(
      "{\"s\":\"\\u0041\\u00e9\\u2603\\u0000\"}", &parsed, &error))
      << error;
  const service::JsonValue* s = parsed.find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->as_string(),
            std::string("A\xC3\xA9\xE2\x98\x83\0", 7));
}

}  // namespace
}  // namespace jigsaw
