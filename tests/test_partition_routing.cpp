#include <gtest/gtest.h>

#include <set>

#include "core/jigsaw_allocator.hpp"
#include "routing/partition_routing.hpp"
#include "test_helpers.hpp"

namespace jigsaw {
namespace {

using testing::must_allocate;

std::set<int> allowed_links(const FatTree& t, const Allocation& a) {
  std::set<int> allowed;
  for (const NodeId n : a.nodes) {
    allowed.insert(t.node_up_link(n));
    allowed.insert(t.node_down_link(n));
  }
  for (const LeafWire& w : a.leaf_wires) {
    allowed.insert(t.leaf_up_link(w.leaf, w.l2_index));
    allowed.insert(t.leaf_down_link(w.leaf, w.l2_index));
  }
  for (const L2Wire& w : a.l2_wires) {
    allowed.insert(t.l2_up_link(w.tree, w.l2_index, w.spine_index));
    allowed.insert(t.l2_down_link(w.tree, w.l2_index, w.spine_index));
  }
  return allowed;
}

TEST(PartitionRouting, AllPairsStayInsidePartition) {
  // Figure 5's point: every hop of every flow uses an allocated link,
  // including to and from remainder switches.
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  JigsawAllocator jigsaw;
  // 11 nodes forces a remainder leaf; occupy some nodes first so the
  // allocation is not perfectly aligned.
  must_allocate(jigsaw, state, 1, 3);
  const Allocation a = must_allocate(jigsaw, state, 2, 11);
  const PartitionRouter router(t, a);
  const auto allowed = allowed_links(t, a);
  for (const NodeId src : a.nodes) {
    for (const NodeId dst : a.nodes) {
      for (const int link : router.route(src, dst)) {
        EXPECT_TRUE(allowed.count(link))
            << "flow " << src << "->" << dst << " escaped on "
            << t.link_name(link);
      }
    }
  }
}

TEST(PartitionRouting, CrossTreeAllocationsStayInside) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  JigsawAllocator jigsaw;
  // Larger than one subtree (16 nodes) => three-level allocation.
  const Allocation a = must_allocate(jigsaw, state, 1, 37);
  const PartitionRouter router(t, a);
  const auto allowed = allowed_links(t, a);
  int cross_tree_flows = 0;
  for (const NodeId src : a.nodes) {
    for (const NodeId dst : a.nodes) {
      const auto route = router.route(src, dst);
      if (route.size() == 6) ++cross_tree_flows;
      for (const int link : route) {
        ASSERT_TRUE(allowed.count(link)) << t.link_name(link);
      }
    }
  }
  EXPECT_GT(cross_tree_flows, 0);
}

TEST(PartitionRouting, WraparoundSpreadsLoadAcrossUplinks) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  JigsawAllocator jigsaw;
  const Allocation a = must_allocate(jigsaw, state, 1, 8);  // 2 leaves x 4
  const PartitionRouter router(t, a);
  // Destinations on the same remote leaf but different ranks should use
  // different uplinks (the modulus wraps over the allocated set).
  std::set<int> uplinks_used;
  const NodeId src = a.nodes.front();
  for (const NodeId dst : a.nodes) {
    if (t.leaf_of_node(dst) == t.leaf_of_node(src)) continue;
    const auto route = router.route(src, dst);
    ASSERT_EQ(route.size(), 4u);
    uplinks_used.insert(route[1]);
  }
  EXPECT_GT(uplinks_used.size(), 1u);
}

TEST(PartitionRouting, RejectsForeignNodes) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  JigsawAllocator jigsaw;
  const Allocation a = must_allocate(jigsaw, state, 1, 4);
  const PartitionRouter router(t, a);
  const NodeId outside = t.total_nodes() - 1;
  EXPECT_THROW(router.route(a.nodes.front(), outside), std::invalid_argument);
  EXPECT_THROW(router.rank_of(outside), std::invalid_argument);
}

TEST(PartitionRouting, RanksAreDenseAndOrdered) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  JigsawAllocator jigsaw;
  const Allocation a = must_allocate(jigsaw, state, 1, 9);
  const PartitionRouter router(t, a);
  std::vector<NodeId> sorted = a.nodes;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t k = 0; k < sorted.size(); ++k) {
    EXPECT_EQ(router.rank_of(sorted[k]), static_cast<int>(k));
  }
}

}  // namespace
}  // namespace jigsaw
