// Fuzz the runtime-dispatched SIMD mask kernels (util/simd.hpp) against
// their scalar reference at every dispatch level the host supports. The
// vector paths must be bit-identical to scalar — the allocators' golden
// determinism tests assume the batch kernels are pure drop-ins — so the
// fuzz covers the awkward geometry on purpose: length 0, lengths around
// the 4- and 8-lane vector widths, unaligned base pointers, and tails of
// every residue.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "util/simd.hpp"

namespace jigsaw {
namespace {

std::vector<simd::Level> host_levels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::detected_level() >= simd::Level::kAvx2) {
    levels.push_back(simd::Level::kAvx2);
  }
  if (simd::detected_level() >= simd::Level::kAvx512) {
    levels.push_back(simd::Level::kAvx512);
  }
  return levels;
}

TEST(Simd, LevelParseAndNames) {
  simd::Level level = simd::Level::kAvx512;
  EXPECT_TRUE(simd::parse_level("scalar", &level));
  EXPECT_EQ(level, simd::Level::kScalar);
  EXPECT_TRUE(simd::parse_level("avx2", &level));
  EXPECT_EQ(level, simd::Level::kAvx2);
  EXPECT_TRUE(simd::parse_level("avx512", &level));
  EXPECT_EQ(level, simd::Level::kAvx512);
  EXPECT_FALSE(simd::parse_level("sse9", &level));
  EXPECT_STREQ(simd::level_name(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx2), "avx2");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx512), "avx512");
}

TEST(Simd, SetActiveLevelClampsToDetected) {
  const simd::Level before = simd::active_level();
  simd::set_active_level(simd::Level::kAvx512);
  EXPECT_LE(simd::active_level(), simd::detected_level());
  simd::set_active_level(simd::Level::kScalar);
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  simd::set_active_level(before);
}

TEST(Simd, FuzzMaskKernelsAllLevelsMatchScalar) {
  std::mt19937_64 rng(0x51D0F00DULL);
  const std::vector<simd::Level> levels = host_levels();
  ASSERT_FALSE(levels.empty());

  for (int trial = 0; trial < 2000; ++trial) {
    // Lengths hug the vector widths (0..~2 AVX-512 blocks plus change) so
    // every tail residue of the 4- and 8-lane loops occurs many times.
    const std::size_t n = rng() % 67;
    const std::size_t offset = rng() % 3;  // unaligned slice starts
    std::vector<std::uint64_t> a(offset + n), b(offset + n);
    for (std::size_t i = 0; i < offset + n; ++i) {
      a[i] = rng();
      b[i] = (trial % 4 == 0) ? ~std::uint64_t{0} : rng();
      if (trial % 5 == 0) b[i] &= a[i];  // correlated masks
    }
    const std::uint64_t* pa = a.data() + offset;
    const std::uint64_t* pb = b.data() + offset;
    const int need = static_cast<int>(rng() % 66);

    const std::uint64_t want_and =
        simd::and_reduce_rows_at(simd::Level::kScalar, pa, pb, n);
    const int want_pop =
        simd::popcount_and_rows_at(simd::Level::kScalar, pa, pb, n);
    std::vector<std::uint64_t> want_out(n + 1, 0xABABABABABABABABULL);
    const bool want_viable = simd::and_rows_viable_at(
        simd::Level::kScalar, pa, pb, want_out.data(), n, need);

    for (const simd::Level level : levels) {
      SCOPED_TRACE(testing::Message() << "level=" << simd::level_name(level)
                                      << " n=" << n << " trial=" << trial);
      EXPECT_EQ(simd::and_reduce_rows_at(level, pa, pb, n), want_and);
      EXPECT_EQ(simd::popcount_and_rows_at(level, pa, pb, n), want_pop);
      std::vector<std::uint64_t> out(n + 1, 0xABABABABABABABABULL);
      EXPECT_EQ(simd::and_rows_viable_at(level, pa, pb, out.data(), n, need),
                want_viable);
      EXPECT_EQ(out, want_out);  // includes the untouched guard word
    }
  }
}

TEST(Simd, FuzzMaskGeRowsAllLevelsMatchScalar) {
  std::mt19937_64 rng(0xBEEFCAFEULL);
  const std::vector<simd::Level> levels = host_levels();
  std::uniform_real_distribution<double> value(-4.0, 4.0);

  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t n = rng() % 65;  // the kernel contract caps n at 64
    const std::size_t offset = rng() % 3;
    std::vector<double> vals(offset + n);
    for (double& v : vals) v = value(rng);
    // Thresholds collide with stored values often enough to exercise the
    // >= boundary, including exact equality.
    double threshold = value(rng);
    if (n > 0 && trial % 3 == 0) threshold = vals[offset + rng() % n];
    const double* pv = vals.data() + offset;

    const std::uint64_t want =
        simd::mask_ge_rows_at(simd::Level::kScalar, pv, n, threshold);
    for (const simd::Level level : levels) {
      SCOPED_TRACE(testing::Message() << "level=" << simd::level_name(level)
                                      << " n=" << n << " trial=" << trial);
      EXPECT_EQ(simd::mask_ge_rows_at(level, pv, n, threshold), want);
    }
  }
}

TEST(Simd, EdgeCasesLengthZeroAndAllOnes) {
  for (const simd::Level level : host_levels()) {
    SCOPED_TRACE(simd::level_name(level));
    EXPECT_EQ(simd::and_reduce_rows_at(level, nullptr, nullptr, 0),
              ~std::uint64_t{0});
    EXPECT_EQ(simd::popcount_and_rows_at(level, nullptr, nullptr, 0), 0);
    EXPECT_TRUE(
        simd::and_rows_viable_at(level, nullptr, nullptr, nullptr, 0, 64));
    EXPECT_EQ(simd::mask_ge_rows_at(level, nullptr, 0, 0.0), 0u);

    std::vector<std::uint64_t> ones(9, ~std::uint64_t{0});
    std::vector<std::uint64_t> out(9, 0);
    EXPECT_EQ(simd::and_reduce_rows_at(level, ones.data(), ones.data(), 9),
              ~std::uint64_t{0});
    EXPECT_EQ(simd::popcount_and_rows_at(level, ones.data(), ones.data(), 9),
              9 * 64);
    EXPECT_TRUE(simd::and_rows_viable_at(level, ones.data(), ones.data(),
                                         out.data(), 9, 64));
    EXPECT_FALSE(simd::and_rows_viable_at(level, ones.data(), ones.data(),
                                          out.data(), 9, 65));
  }
}

}  // namespace
}  // namespace jigsaw
