#include <gtest/gtest.h>


#include <map>
#include <set>
#include "core/conditions.hpp"
#include "core/laas.hpp"
#include "test_helpers.hpp"

namespace jigsaw {
namespace {

using testing::must_allocate;

TEST(Laas, SingleSubtreeJobsAreExact) {
  // Within one subtree LaaS applies its native two-level conditions and
  // wastes nothing (footnote 1: shared with Jigsaw).
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const LaasAllocator laas;
  const Allocation a = must_allocate(laas, state, 1, 3);
  EXPECT_EQ(a.requested_nodes, 3);
  EXPECT_EQ(a.allocated_nodes(), 3);
  EXPECT_EQ(a.wasted_nodes(), 0);
}

TEST(Laas, CrossSubtreeJobsRoundUpToWholeLeaves) {
  // A job too large for one subtree reduces leaves to nodes and rounds up:
  // 17 nodes -> ceil(17/4) = 5 whole leaves = 20 nodes (Figure 2, left).
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const LaasAllocator laas;
  const Allocation a = must_allocate(laas, state, 1, 17);
  EXPECT_EQ(a.requested_nodes, 17);
  EXPECT_EQ(a.allocated_nodes(), 20);
  EXPECT_EQ(a.wasted_nodes(), 3);
  EXPECT_EQ(a.leaf_wires.size(), 20u);  // every grant takes all uplinks
}

TEST(Laas, ExactMultipleWastesNothing) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const LaasAllocator laas;
  const Allocation a = must_allocate(laas, state, 1, 8);
  EXPECT_EQ(a.allocated_nodes(), 8);
  EXPECT_EQ(a.wasted_nodes(), 0);
}

TEST(Laas, SingleSubtreeUsesNoSpines) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const LaasAllocator laas;
  const Allocation a = must_allocate(laas, state, 1, 13);
  EXPECT_TRUE(a.l2_wires.empty());
  EXPECT_EQ(a.allocated_nodes(), 13);
  const TreeId tree = t.tree_of_node(a.nodes.front());
  for (const NodeId n : a.nodes) EXPECT_EQ(t.tree_of_node(n), tree);
}

TEST(Laas, CrossSubtreeAllocationsSatisfyBandwidthConditions) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const LaasAllocator laas;
  const Allocation a = must_allocate(laas, state, 1, 23);  // 6 leaves
  EXPECT_FALSE(a.l2_wires.empty());
  const auto report = check_full_bandwidth(t, a);
  EXPECT_TRUE(report.ok) << report.error;
  // ... but not the high-utilization conditions (internal fragmentation).
  EXPECT_FALSE(check_high_utilization(t, a).ok);
}

TEST(Laas, CommonSpineIndexBundles) {
  // The reduction forces every L2 group to use the same spine indices.
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const LaasAllocator laas;
  const Allocation a = must_allocate(laas, state, 1, 32);  // 2 trees x 4 leaves
  std::map<std::pair<TreeId, int>, Mask> wires;
  for (const L2Wire& w : a.l2_wires) {
    wires[{w.tree, w.l2_index}] |= Mask{1} << w.spine_index;
  }
  ASSERT_FALSE(wires.empty());
  const Mask first = wires.begin()->second;
  for (const auto& [key, mask] : wires) {
    (void)key;
    EXPECT_EQ(mask, first);  // same j-set everywhere
  }
}

TEST(Laas, RoundingStrandsNodesUnderCrossSubtreeLoad) {
  // Three 17-node jobs each consume 5 whole leaves (20 nodes). The nine
  // wasted nodes are unreachable by further cross-subtree jobs even
  // though the machine "has room": 64 - 60 = 4 free + 9 stranded.
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const LaasAllocator laas;
  int wasted = 0;
  for (JobId job = 0; job < 3; ++job) {
    wasted += must_allocate(laas, state, job, 17).wasted_nodes();
  }
  EXPECT_EQ(wasted, 9);
  EXPECT_EQ(state.total_free_nodes(), 4);
  // A 5-node job needs a 2-level placement; only one fully-free leaf (4
  // nodes) remains, and no partial leaf is free — so it cannot be placed
  // although 13 nodes are physically idle.
  EXPECT_FALSE(laas.allocate(state, JobRequest{9, 5, 0.0}).has_value());
  EXPECT_TRUE(laas.allocate(state, JobRequest{10, 4, 0.0}).has_value());
}

TEST(Laas, WholeMachine) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const LaasAllocator laas;
  const Allocation a = must_allocate(laas, state, 1, t.total_nodes());
  EXPECT_EQ(state.total_free_nodes(), 0);
  EXPECT_TRUE(check_full_bandwidth(t, a).ok);
}

TEST(Laas, RemainderSubtreeUsesSpineSubset) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const LaasAllocator laas;
  // 9 leaves = 2 trees x 4 + remainder tree with 1 leaf.
  const Allocation a = must_allocate(laas, state, 1, 36);
  const auto report = check_full_bandwidth(t, a);
  EXPECT_TRUE(report.ok) << report.error;
  std::set<TreeId> trees;
  for (const NodeId n : a.nodes) trees.insert(t.tree_of_node(n));
  EXPECT_EQ(trees.size(), 3u);
}

TEST(Laas, FallsBackToReductionWhenNoSubtreeFits) {
  // A 10-node job fits a subtree by capacity, but every subtree is half
  // used: the two-level pass fails and the whole-leaf reduction places it
  // across subtrees, rounding up.
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const LaasAllocator laas;
  // Eat two leaves per subtree (8 nodes each) with exact 2-level jobs.
  for (TreeId tree = 0; tree < 4; ++tree) {
    Allocation filler;
    filler.job = 100 + tree;
    filler.requested_nodes = 8;
    for (int leaf = 0; leaf < 2; ++leaf) {
      for (int n = 0; n < 4; ++n) {
        filler.nodes.push_back(t.node_id(t.leaf_id(tree, leaf), n));
      }
    }
    state.apply(filler);
  }
  // Each subtree has 8 free nodes on 2 fully-free leaves; a 10-node job
  // cannot fit one subtree, so LaaS reduces: ceil(10/4) = 3 whole leaves
  // (12 nodes) split 2 + 1 across subtrees.
  const Allocation a = must_allocate(laas, state, 1, 10);
  EXPECT_EQ(a.allocated_nodes(), 12);
  EXPECT_EQ(a.wasted_nodes(), 2);
  std::set<TreeId> trees;
  for (const NodeId n : a.nodes) trees.insert(t.tree_of_node(n));
  EXPECT_EQ(trees.size(), 2u);
  EXPECT_TRUE(check_full_bandwidth(t, a).ok);
}

}  // namespace
}  // namespace jigsaw
