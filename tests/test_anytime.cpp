// Anytime deadline-bounded placement search (core/parallel_search.hpp):
// determinism guards and soundness guards.
//
// The contract under test has three legs. (1) An inactive or abort-only
// AllocBudget must be bit-identical to the historical exhaustive scan —
// same placement, same step ledger — sequential or parallel. (2) A real
// deadline may trade placement quality and hit rate but never soundness:
// anything allocate() returns under any deadline must still pass
// ClusterState::can_apply and, for the isolating schemes, the full §3.2
// condition checks. (3) The v2 ranked shape tables serve exactly the
// quality-descending permutations the runtime ranker computes, and a
// corrupt permutation is rejected at load, never served.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "core/conditions.hpp"
#include "core/jigsaw_allocator.hpp"
#include "core/laas.hpp"
#include "core/lc.hpp"
#include "core/parallel_search.hpp"
#include "core/shape_table.hpp"
#include "core/shapes.hpp"
#include "core/ta.hpp"
#include "obs/metrics_registry.hpp"
#include "service/wal.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace jigsaw {
namespace {

std::string fmt17(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

std::string temp_path(const char* tag) {
  return testing::TempDir() + "/anytime_" + tag + "_" +
         std::to_string(::getpid()) + ".jst";
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.write(bytes.data(),
                        static_cast<std::streamsize>(bytes.size())));
}

/// Fill `state` with a deterministic fragmented workload: apply jobs of
/// random sizes until the first failure, then release roughly a third of
/// them. Returns the next unused job id.
JobId fragment(const Allocator& alloc, ClusterState& state, Rng& rng) {
  std::vector<Allocation> held;
  JobId next = 1;
  for (int i = 0; i < 64; ++i) {
    const int nodes = 1 + static_cast<int>(rng.below(12));
    const auto a = alloc.allocate(state, JobRequest{next, nodes, 0.0});
    if (!a.has_value()) break;
    state.apply(*a);
    held.push_back(*a);
    ++next;
  }
  for (std::size_t i = 0; i < held.size(); ++i) {
    if (rng.below(3) == 0) state.release(held[i]);
  }
  return next;
}

// ---- leg 1: abort-only budgets are bit-identical ------------------------

// An AllocBudget carrying only a (never-fired) abort flag is "active", so
// it exercises the whole anytime plumbing — AnytimeClock construction,
// scan_first_feasible's expiry gates, the per-probe clock threading — but
// ranked() is false, so the candidate order stays canonical and the
// budget-ledger replay applies. Placement and step count must match the
// no-budget call exactly, at every thread count.
TEST(Anytime, AbortOnlyBudgetMatchesExhaustiveAcrossThreads) {
  const FatTree topo = FatTree::from_radix(16);
  ThreadPool pool(4);
  const SearchExec execs[] = {SearchExec{}, SearchExec{&pool, 4}};

  const JigsawAllocator jigsaw;
  const LaasAllocator laas;
  const LeastConstrainedAllocator lcs(true);
  const TaAllocator ta;
  const Allocator* schemes[] = {&jigsaw, &laas, &lcs, &ta};

  std::atomic<bool> never{false};
  const AllocBudget abort_only{0, &never};

  for (const Allocator* base : schemes) {
    ClusterState state(topo);
    Rng rng(0xA11C0DE + base->name().size());
    JobId next = fragment(*base, state, rng);
    for (int trial = 0; trial < 24; ++trial) {
      const JobRequest req{next + trial, 1 + static_cast<int>(rng.below(20)),
                           1.0};
      SearchStats want_stats;
      const auto want = base->allocate(state, req, &want_stats);
      for (const SearchExec& exec : execs) {
        SCOPED_TRACE(base->name() + " threads " +
                     std::to_string(exec.threads) + " trial " +
                     std::to_string(trial));
        // allocate() is const but set_search_exec is not; clone per exec.
        AllocatorPtr under = nullptr;
        if (base == &jigsaw) under = std::make_unique<JigsawAllocator>();
        if (base == &laas) under = std::make_unique<LaasAllocator>();
        if (base == &lcs) {
          under = std::make_unique<LeastConstrainedAllocator>(true);
        }
        if (base == &ta) under = std::make_unique<TaAllocator>();
        under->set_search_exec(exec);

        SearchStats got_stats;
        const auto got = under->allocate(state, req, abort_only, &got_stats);
        ASSERT_EQ(got.has_value(), want.has_value());
        if (want.has_value()) {
          EXPECT_EQ(got->nodes, want->nodes);
          EXPECT_EQ(got->leaf_wires, want->leaf_wires);
          EXPECT_EQ(got->l2_wires, want->l2_wires);
        }
        EXPECT_EQ(got_stats.steps, want_stats.steps);
        EXPECT_EQ(got_stats.budget_exhausted, want_stats.budget_exhausted);
        EXPECT_FALSE(got_stats.deadline_expired);
      }
      // Grow the fragmentation as the trial sequence proceeds.
      if (want.has_value() && trial % 2 == 0) state.apply(*want);
    }
  }
}

// Whole-simulation leg of the same guarantee: alloc_deadline_us = 0 (the
// "infinite deadline") is the exhaustive default, bit-identical across
// search-thread counts, grant for grant.
TEST(Anytime, InfiniteDeadlineSimIsBitIdenticalAcrossThreads) {
  Trace trace = named_synthetic("Synth-16", 800);
  Rng rng(0xBADC0FFEEULL);
  assign_bandwidth_classes(trace, rng);
  const FatTree topo = FatTree::from_radix(16);
  ThreadPool pool(4);

  struct Run {
    SimMetrics metrics;
    std::vector<std::vector<NodeId>> grants;
  };
  auto run = [&](const SearchExec& exec) {
    JigsawAllocator alloc;
    alloc.set_search_exec(exec);
    Run r;
    SimConfig config;
    config.alloc_deadline_us = 0;  // explicit: the exhaustive default
    config.grant_audit = [&](double, const Allocation& a,
                             const ClusterState&) {
      r.grants.push_back(a.nodes);
    };
    r.metrics = simulate(topo, alloc, trace, config);
    return r;
  };

  const Run seq = run(SearchExec{});
  const Run par = run(SearchExec{&pool, 4});
  EXPECT_EQ(fmt17(seq.metrics.steady_utilization),
            fmt17(par.metrics.steady_utilization));
  EXPECT_EQ(fmt17(seq.metrics.makespan), fmt17(par.metrics.makespan));
  EXPECT_EQ(fmt17(seq.metrics.mean_turnaround_all),
            fmt17(par.metrics.mean_turnaround_all));
  EXPECT_EQ(seq.metrics.search_steps, par.metrics.search_steps);
  EXPECT_EQ(seq.metrics.allocate_calls, par.metrics.allocate_calls);
  ASSERT_EQ(seq.grants.size(), par.grants.size());
  for (std::size_t i = 0; i < seq.grants.size(); ++i) {
    ASSERT_EQ(seq.grants[i], par.grants[i]) << "grant " << i;
  }
}

// ---- leg 2: deadlines trade quality, never soundness --------------------

// Even a 1 ns deadline (expired before the first expiry check) must
// return either nothing or a placement that passes the scheme's full
// isolation conditions — the position-0 liveness exemption guarantees the
// top-ranked candidate always gets a complete verdict.
TEST(Anytime, TinyDeadlinePlacementsAreFeasibleOrNull) {
  const FatTree topo = FatTree::from_radix(16);
  const JigsawAllocator jigsaw;
  const LaasAllocator laas;
  const LeastConstrainedAllocator lcs(true);
  const TaAllocator ta;
  const Allocator* schemes[] = {&jigsaw, &laas, &lcs, &ta};

  for (const Allocator* alloc : schemes) {
    ClusterState state(topo);
    Rng rng(0xDEAD11 + static_cast<std::uint64_t>(alloc->isolating()));
    JobId next = fragment(*alloc, state, rng);
    int granted = 0;
    for (const std::int64_t deadline_ns : {std::int64_t{1}, std::int64_t{50'000}}) {
      for (int nodes = 1; nodes <= topo.total_nodes(); nodes += 3) {
        SCOPED_TRACE(alloc->name() + " deadline " +
                     std::to_string(deadline_ns) + "ns nodes " +
                     std::to_string(nodes));
        SearchStats stats;
        const auto got = alloc->allocate(
            state, JobRequest{next, nodes, 1.0},
            AllocBudget{deadline_ns, nullptr}, &stats);
        if (!got.has_value()) continue;
        ++granted;
        ASSERT_TRUE(state.can_apply(*got));
        if (alloc == &jigsaw || alloc == &laas) {
          const ConditionReport full = check_full_bandwidth(topo, *got);
          EXPECT_TRUE(full.ok) << full.error;
        }
        if (alloc == &jigsaw) {
          const ConditionReport high = check_high_utilization(topo, *got);
          EXPECT_TRUE(high.ok) << high.error;
        }
      }
    }
    EXPECT_GT(granted, 0) << alloc->name();
  }
}

// Full trace under finite deadlines: every job still completes and every
// grant still passes the §3.2 audit. The deadline metrics surface on the
// attached registry.
TEST(Anytime, FiniteDeadlineSimCompletesWithAuditedGrants) {
  Trace trace = named_synthetic("Synth-16", 400);
  Rng rng(0xBADC0FFEEULL);
  assign_bandwidth_classes(trace, rng);
  const FatTree topo = FatTree::from_radix(16);
  const JigsawAllocator jigsaw;
  const LaasAllocator laas;

  for (const std::int64_t deadline_us : {std::int64_t{1}, std::int64_t{100}}) {
    for (const Allocator* alloc :
         {static_cast<const Allocator*>(&jigsaw),
          static_cast<const Allocator*>(&laas)}) {
      SCOPED_TRACE(alloc->name() + " deadline " +
                   std::to_string(deadline_us) + "us");
      obs::MetricsRegistry registry;
      SimConfig config;
      config.alloc_deadline_us = deadline_us;
      config.obs.metrics = &registry;
      std::size_t grants = 0;
      config.grant_audit = [&](double, const Allocation& a,
                               const ClusterState&) {
        ++grants;
        const ConditionReport full = check_full_bandwidth(topo, a);
        EXPECT_TRUE(full.ok) << full.error;
      };
      const SimMetrics m = simulate(topo, *alloc, trace, config);
      EXPECT_EQ(m.completed, trace.jobs.size());
      EXPECT_GT(grants, 0u);

      // The anytime surface is wired: the slack histogram saw every
      // budget-bounded call, and the hit counters exist (they may stay
      // zero on a fast host, never negative-sense).
      const obs::Histogram* slack =
          registry.find_histogram("alloc.deadline_slack_seconds");
      ASSERT_NE(slack, nullptr);
      EXPECT_GT(slack->count(), 0u);
      ASSERT_NE(registry.find_counter("sched.deadline_hits"), nullptr);
      const obs::Counter* commits =
          registry.find_counter("sched.anytime_commits");
      ASSERT_NE(commits, nullptr);
      EXPECT_LE(commits->value(),
                registry.find_counter("sched.deadline_hits")->value());
    }
  }
}

// ---- leg 3: the quality-descending probe orders -------------------------

template <typename Shape, typename Cost>
void expect_ranked(const std::vector<Shape>& shapes,
                   const std::vector<std::uint32_t>& order, Cost cost,
                   const char* what, int n) {
  ASSERT_EQ(order.size(), shapes.size()) << what << " n=" << n;
  std::vector<bool> seen(shapes.size(), false);
  for (std::size_t p = 0; p < order.size(); ++p) {
    ASSERT_LT(order[p], shapes.size()) << what << " n=" << n;
    EXPECT_FALSE(seen[order[p]]) << what << " duplicate, n=" << n;
    seen[order[p]] = true;
    if (p > 0) {
      EXPECT_LE(cost(shapes[order[p - 1]]), cost(shapes[order[p]]))
          << what << " not quality-descending at p=" << p << " n=" << n;
    }
  }
}

TEST(Anytime, RankedOrdersAreQualityDescendingPermutations) {
  const FatTree topo = FatTree::from_radix(16);
  for (int n = 1; n <= topo.total_nodes(); ++n) {
    const auto s2 = two_level_shapes(n, topo);
    expect_ranked(s2, ranked_two_level_order(s2), two_level_shape_cost,
                  "two-level", n);
    const auto s3 = three_level_shapes(n, topo, true);
    expect_ranked(s3, ranked_three_level_order(s3), three_level_shape_cost,
                  "three-level restricted", n);
  }
  // The general family (LC's last resort) is ranked at runtime only; spot
  // check a few sizes — it is much larger per size.
  for (const int n : {10, 33, 100}) {
    const auto g = three_level_shapes(n, topo, false);
    expect_ranked(g, ranked_three_level_order(g), three_level_shape_cost,
                  "three-level general", n);
  }
}

TEST(Anytime, RankedTableRoundTripServesRankedOrders) {
  const FatTree topo = FatTree::from_radix(8);
  const std::string path = temp_path("ranked");
  write_file(path, ShapeTable::serialize(topo, /*ranked=*/true));

  std::string error;
  const auto table = ShapeTable::load(path, &error);
  ASSERT_NE(table, nullptr) << error;
  ASSERT_TRUE(table->has_ranked());
  for (int n = 1; n <= topo.total_nodes(); ++n) {
    const auto want2 = ranked_two_level_order(two_level_shapes(n, topo));
    const auto got2 = table->two_level_ranked(n);
    ASSERT_EQ(got2.size(), want2.size()) << "n=" << n;
    EXPECT_TRUE(std::equal(got2.begin(), got2.end(), want2.begin()))
        << "two-level ranked n=" << n;
    const auto want3 =
        ranked_three_level_order(three_level_shapes(n, topo, true));
    const auto got3 = table->three_level_ranked(n);
    ASSERT_EQ(got3.size(), want3.size()) << "n=" << n;
    EXPECT_TRUE(std::equal(got3.begin(), got3.end(), want3.begin()))
        << "three-level ranked n=" << n;
  }

  // Serving: runtime fallback without a table, zero-copy with one.
  clear_shape_tables();
  reset_shape_serve_counters();
  const auto runtime_seq = two_level_ranked_seq(10, topo);
  EXPECT_FALSE(runtime_seq.table_backed());
  EXPECT_EQ(shape_serve_counters().ranked_runtime, 1u);
  install_shape_table(table);
  const auto table_seq = two_level_ranked_seq(10, topo);
  EXPECT_TRUE(table_seq.table_backed());
  EXPECT_EQ(shape_serve_counters().ranked_table, 1u);
  ASSERT_EQ(table_seq.size(), runtime_seq.size());
  EXPECT_TRUE(std::equal(table_seq.begin(), table_seq.end(),
                         runtime_seq.begin()));

  // A v1 (unranked) file still loads — has_ranked() false, ranked spans
  // empty, and the serving layer silently recomputes at runtime.
  clear_shape_tables();
  const std::string v1_path = temp_path("v1");
  write_file(v1_path, ShapeTable::serialize(topo));
  const auto v1 = ShapeTable::load(v1_path, &error);
  ASSERT_NE(v1, nullptr) << error;
  EXPECT_FALSE(v1->has_ranked());
  EXPECT_TRUE(v1->two_level_ranked(10).empty());
  install_shape_table(v1);
  reset_shape_serve_counters();
  const auto fallback = two_level_ranked_seq(10, topo);
  EXPECT_FALSE(fallback.table_backed());
  EXPECT_EQ(shape_serve_counters().ranked_runtime, 1u);
  ASSERT_EQ(fallback.size(), runtime_seq.size());
  EXPECT_TRUE(std::equal(fallback.begin(), fallback.end(),
                         runtime_seq.begin()));

  clear_shape_tables();
  std::remove(path.c_str());
  std::remove(v1_path.c_str());
}

TEST(Anytime, RankedTableCorruptPermutationRejected) {
  const FatTree topo = FatTree::from_radix(8);
  std::string bytes = ShapeTable::serialize(topo, /*ranked=*/true);

  // Locate the first rank2 entry: header (40 B), both index arrays, then
  // the two shape pools; clobber it to an out-of-range value and re-seal
  // the CRC so only the permutation check can reject the file.
  std::size_t c2 = 0, c3 = 0;
  for (int n = 1; n <= topo.total_nodes(); ++n) {
    c2 += two_level_shapes(n, topo).size();
    c3 += three_level_shapes(n, topo, true).size();
  }
  const std::size_t header = 40;
  const std::size_t rank2_off =
      header +
      2 * (static_cast<std::size_t>(topo.total_nodes()) + 1) * sizeof(std::uint64_t) +
      12 * c2 + 20 * c3;
  ASSERT_LE(rank2_off + 4, bytes.size());
  const std::uint32_t bogus = 0xFFFFFFFFu;
  std::memcpy(bytes.data() + rank2_off, &bogus, sizeof(bogus));
  const std::uint32_t crc =
      service::crc32(bytes.data() + header, bytes.size() - header);
  std::memcpy(bytes.data() + 28, &crc, sizeof(crc));

  const std::string path = temp_path("badrank");
  write_file(path, bytes);
  std::string error;
  EXPECT_EQ(ShapeTable::load(path, &error), nullptr);
  EXPECT_NE(error.find("ranked permutation invalid"), std::string::npos)
      << error;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace jigsaw
