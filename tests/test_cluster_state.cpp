#include <gtest/gtest.h>

#include "topology/cluster_state.hpp"

namespace jigsaw {
namespace {

Allocation tiny_alloc(const FatTree& t) {
  Allocation a;
  a.job = 1;
  a.requested_nodes = 3;
  a.nodes = {t.node_id(0, 0), t.node_id(0, 1), t.node_id(1, 0)};
  a.leaf_wires = {LeafWire{0, 0}, LeafWire{0, 2}, LeafWire{1, 0}};
  a.l2_wires = {L2Wire{0, 0, 1}};
  return a;
}

TEST(ClusterState, StartsFullyFree) {
  const FatTree t(4, 4, 4);
  const ClusterState s(t);
  EXPECT_EQ(s.total_free_nodes(), t.total_nodes());
  for (LeafId l = 0; l < t.total_leaves(); ++l) {
    EXPECT_EQ(s.free_nodes(l), low_bits(4));
    EXPECT_EQ(s.free_leaf_up(l), low_bits(4));
    EXPECT_TRUE(s.leaf_fully_free(l));
  }
  for (TreeId tr = 0; tr < t.trees(); ++tr) {
    EXPECT_EQ(s.fully_free_leaves(tr), 4);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(s.free_l2_up(tr, i), low_bits(4));
  }
  EXPECT_TRUE(s.check_invariants());
}

TEST(ClusterState, ApplyReleaseRoundTrip) {
  const FatTree t(4, 4, 4);
  ClusterState s(t);
  const Allocation a = tiny_alloc(t);
  s.apply(a);
  EXPECT_EQ(s.total_free_nodes(), t.total_nodes() - 3);
  EXPECT_EQ(s.free_nodes(0), low_bits(4) & ~Mask{0b11});
  EXPECT_FALSE(s.leaf_fully_free(0));
  EXPECT_EQ(s.free_leaf_up(0), low_bits(4) & ~Mask{0b101});
  EXPECT_EQ(s.free_l2_up(0, 0), low_bits(4) & ~Mask{0b10});
  EXPECT_TRUE(s.check_invariants());
  s.release(a);
  EXPECT_EQ(s.total_free_nodes(), t.total_nodes());
  EXPECT_TRUE(s.leaf_fully_free(0));
  EXPECT_TRUE(s.check_invariants());
}

TEST(ClusterState, DoubleApplyThrows) {
  const FatTree t(4, 4, 4);
  ClusterState s(t);
  const Allocation a = tiny_alloc(t);
  s.apply(a);
  EXPECT_THROW(s.apply(a), std::logic_error);
}

TEST(ClusterState, ReleaseUnallocatedThrows) {
  const FatTree t(4, 4, 4);
  ClusterState s(t);
  EXPECT_THROW(s.release(tiny_alloc(t)), std::logic_error);
}

TEST(ClusterState, ConflictingWireThrows) {
  const FatTree t(4, 4, 4);
  ClusterState s(t);
  Allocation a;
  a.job = 1;
  a.requested_nodes = 1;
  a.nodes = {t.node_id(0, 0)};
  a.leaf_wires = {LeafWire{0, 1}};
  s.apply(a);
  Allocation b;
  b.job = 2;
  b.requested_nodes = 1;
  b.nodes = {t.node_id(0, 1)};
  b.leaf_wires = {LeafWire{0, 1}};  // same wire
  EXPECT_THROW(s.apply(b), std::logic_error);
}

TEST(ClusterState, BandwidthSharingAllowsCotenants) {
  const FatTree t(4, 4, 4);
  ClusterState s(t, 4.0);
  Allocation a;
  a.job = 1;
  a.requested_nodes = 1;
  a.nodes = {t.node_id(0, 0)};
  a.leaf_wires = {LeafWire{0, 1}};
  a.bandwidth = 2.0;
  s.apply(a);
  EXPECT_DOUBLE_EQ(s.residual_leaf_up(0, 1), 2.0);
  // A second 2.0 GB/s tenant still fits; a third does not.
  Allocation b = a;
  b.job = 2;
  b.nodes = {t.node_id(0, 1)};
  s.apply(b);
  EXPECT_DOUBLE_EQ(s.residual_leaf_up(0, 1), 0.0);
  Allocation c = a;
  c.job = 3;
  c.nodes = {t.node_id(0, 2)};
  EXPECT_THROW(s.apply(c), std::logic_error);
  EXPECT_TRUE(s.check_invariants());
  s.release(b);
  EXPECT_DOUBLE_EQ(s.residual_leaf_up(0, 1), 2.0);
  s.apply(c);  // fits again after the release
  EXPECT_TRUE(s.check_invariants());
}

TEST(ClusterState, BandwidthMaskThresholds) {
  const FatTree t(4, 4, 4);
  ClusterState s(t, 4.0);
  Allocation a;
  a.job = 1;
  a.requested_nodes = 1;
  a.nodes = {t.node_id(0, 0)};
  a.leaf_wires = {LeafWire{0, 0}};
  a.l2_wires = {L2Wire{0, 0, 0}};
  a.bandwidth = 3.0;
  s.apply(a);
  EXPECT_EQ(s.leaf_up_with_bandwidth(0, 2.0), low_bits(4) & ~Mask{1});
  EXPECT_EQ(s.leaf_up_with_bandwidth(0, 1.0), low_bits(4));
  EXPECT_EQ(s.l2_up_with_bandwidth(0, 0, 2.0), low_bits(4) & ~Mask{1});
}

TEST(ClusterState, ExclusiveWireExcludedFromBandwidthMask) {
  const FatTree t(4, 4, 4);
  ClusterState s(t, 4.0);
  Allocation a;
  a.job = 1;
  a.requested_nodes = 1;
  a.nodes = {t.node_id(0, 0)};
  a.leaf_wires = {LeafWire{0, 2}};
  s.apply(a);  // exclusive
  EXPECT_EQ(s.leaf_up_with_bandwidth(0, 0.5), low_bits(4) & ~Mask{0b100});
}

TEST(ClusterState, CopySemanticsForShadowState) {
  const FatTree t(4, 4, 4);
  ClusterState s(t);
  const Allocation a = tiny_alloc(t);
  s.apply(a);
  ClusterState shadow = s;  // the EASY scheduler's copy
  shadow.release(a);
  EXPECT_EQ(shadow.total_free_nodes(), t.total_nodes());
  EXPECT_EQ(s.total_free_nodes(), t.total_nodes() - 3);  // original untouched
}

}  // namespace
}  // namespace jigsaw
