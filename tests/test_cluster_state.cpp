#include <gtest/gtest.h>

#include <vector>

#include "topology/cluster_state.hpp"
#include "util/rng.hpp"

namespace jigsaw {
namespace {

Allocation tiny_alloc(const FatTree& t) {
  Allocation a;
  a.job = 1;
  a.requested_nodes = 3;
  a.nodes = {t.node_id(0, 0), t.node_id(0, 1), t.node_id(1, 0)};
  a.leaf_wires = {LeafWire{0, 0}, LeafWire{0, 2}, LeafWire{1, 0}};
  a.l2_wires = {L2Wire{0, 0, 1}};
  return a;
}

TEST(ClusterState, StartsFullyFree) {
  const FatTree t(4, 4, 4);
  const ClusterState s(t);
  EXPECT_EQ(s.total_free_nodes(), t.total_nodes());
  for (LeafId l = 0; l < t.total_leaves(); ++l) {
    EXPECT_EQ(s.free_nodes(l), low_bits(4));
    EXPECT_EQ(s.free_leaf_up(l), low_bits(4));
    EXPECT_TRUE(s.leaf_fully_free(l));
  }
  for (TreeId tr = 0; tr < t.trees(); ++tr) {
    EXPECT_EQ(s.fully_free_leaves(tr), 4);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(s.free_l2_up(tr, i), low_bits(4));
  }
  EXPECT_TRUE(s.check_invariants());
}

TEST(ClusterState, ApplyReleaseRoundTrip) {
  const FatTree t(4, 4, 4);
  ClusterState s(t);
  const Allocation a = tiny_alloc(t);
  s.apply(a);
  EXPECT_EQ(s.total_free_nodes(), t.total_nodes() - 3);
  EXPECT_EQ(s.free_nodes(0), low_bits(4) & ~Mask{0b11});
  EXPECT_FALSE(s.leaf_fully_free(0));
  EXPECT_EQ(s.free_leaf_up(0), low_bits(4) & ~Mask{0b101});
  EXPECT_EQ(s.free_l2_up(0, 0), low_bits(4) & ~Mask{0b10});
  EXPECT_TRUE(s.check_invariants());
  s.release(a);
  EXPECT_EQ(s.total_free_nodes(), t.total_nodes());
  EXPECT_TRUE(s.leaf_fully_free(0));
  EXPECT_TRUE(s.check_invariants());
}

TEST(ClusterState, DoubleApplyThrows) {
  const FatTree t(4, 4, 4);
  ClusterState s(t);
  const Allocation a = tiny_alloc(t);
  s.apply(a);
  EXPECT_THROW(s.apply(a), std::logic_error);
}

TEST(ClusterState, ReleaseUnallocatedThrows) {
  const FatTree t(4, 4, 4);
  ClusterState s(t);
  EXPECT_THROW(s.release(tiny_alloc(t)), std::logic_error);
}

TEST(ClusterState, ConflictingWireThrows) {
  const FatTree t(4, 4, 4);
  ClusterState s(t);
  Allocation a;
  a.job = 1;
  a.requested_nodes = 1;
  a.nodes = {t.node_id(0, 0)};
  a.leaf_wires = {LeafWire{0, 1}};
  s.apply(a);
  Allocation b;
  b.job = 2;
  b.requested_nodes = 1;
  b.nodes = {t.node_id(0, 1)};
  b.leaf_wires = {LeafWire{0, 1}};  // same wire
  EXPECT_THROW(s.apply(b), std::logic_error);
}

TEST(ClusterState, BandwidthSharingAllowsCotenants) {
  const FatTree t(4, 4, 4);
  ClusterState s(t, 4.0);
  Allocation a;
  a.job = 1;
  a.requested_nodes = 1;
  a.nodes = {t.node_id(0, 0)};
  a.leaf_wires = {LeafWire{0, 1}};
  a.bandwidth = 2.0;
  s.apply(a);
  EXPECT_DOUBLE_EQ(s.residual_leaf_up(0, 1), 2.0);
  // A second 2.0 GB/s tenant still fits; a third does not.
  Allocation b = a;
  b.job = 2;
  b.nodes = {t.node_id(0, 1)};
  s.apply(b);
  EXPECT_DOUBLE_EQ(s.residual_leaf_up(0, 1), 0.0);
  Allocation c = a;
  c.job = 3;
  c.nodes = {t.node_id(0, 2)};
  EXPECT_THROW(s.apply(c), std::logic_error);
  EXPECT_TRUE(s.check_invariants());
  s.release(b);
  EXPECT_DOUBLE_EQ(s.residual_leaf_up(0, 1), 2.0);
  s.apply(c);  // fits again after the release
  EXPECT_TRUE(s.check_invariants());
}

TEST(ClusterState, BandwidthMaskThresholds) {
  const FatTree t(4, 4, 4);
  ClusterState s(t, 4.0);
  Allocation a;
  a.job = 1;
  a.requested_nodes = 1;
  a.nodes = {t.node_id(0, 0)};
  a.leaf_wires = {LeafWire{0, 0}};
  a.l2_wires = {L2Wire{0, 0, 0}};
  a.bandwidth = 3.0;
  s.apply(a);
  EXPECT_EQ(s.leaf_up_with_bandwidth(0, 2.0), low_bits(4) & ~Mask{1});
  EXPECT_EQ(s.leaf_up_with_bandwidth(0, 1.0), low_bits(4));
  EXPECT_EQ(s.l2_up_with_bandwidth(0, 0, 2.0), low_bits(4) & ~Mask{1});
}

TEST(ClusterState, ExclusiveWireExcludedFromBandwidthMask) {
  const FatTree t(4, 4, 4);
  ClusterState s(t, 4.0);
  Allocation a;
  a.job = 1;
  a.requested_nodes = 1;
  a.nodes = {t.node_id(0, 0)};
  a.leaf_wires = {LeafWire{0, 2}};
  s.apply(a);  // exclusive
  EXPECT_EQ(s.leaf_up_with_bandwidth(0, 0.5), low_bits(4) & ~Mask{0b100});
}

// ---- randomized interleaving property test ------------------------------

/// Every public query of the two states must agree. Bandwidth state is
/// compared through the guarded queries (and the residual accessors,
/// which default to the usable budget), so a state whose residual arrays
/// were lazily allocated and then rolled back compares equal to one that
/// never allocated them.
void expect_states_equal(const ClusterState& a, const ClusterState& b) {
  const FatTree& t = a.topo();
  EXPECT_EQ(a.total_free_nodes(), b.total_free_nodes());
  EXPECT_EQ(a.failed_node_count(), b.failed_node_count());
  EXPECT_EQ(a.failed_wire_count(), b.failed_wire_count());
  for (LeafId l = 0; l < t.total_leaves(); ++l) {
    ASSERT_EQ(a.free_nodes(l), b.free_nodes(l)) << "leaf " << l;
    ASSERT_EQ(a.free_leaf_up(l), b.free_leaf_up(l)) << "leaf " << l;
    ASSERT_EQ(a.healthy_nodes(l), b.healthy_nodes(l)) << "leaf " << l;
    ASSERT_EQ(a.healthy_leaf_up(l), b.healthy_leaf_up(l)) << "leaf " << l;
    ASSERT_EQ(a.free_node_count(l), b.free_node_count(l)) << "leaf " << l;
    for (const double demand : {0.5, 1.0, 2.0}) {
      ASSERT_EQ(a.leaf_up_with_bandwidth(l, demand),
                b.leaf_up_with_bandwidth(l, demand))
          << "leaf " << l << " demand " << demand;
    }
    for (int i = 0; i < t.l2_per_tree(); ++i) {
      ASSERT_DOUBLE_EQ(a.residual_leaf_up(l, i), b.residual_leaf_up(l, i));
    }
  }
  for (TreeId tr = 0; tr < t.trees(); ++tr) {
    ASSERT_EQ(a.fully_free_leaves(tr), b.fully_free_leaves(tr));
    ASSERT_EQ(a.fully_free_leaf_mask(tr), b.fully_free_leaf_mask(tr));
    ASSERT_EQ(a.tree_free_nodes(tr), b.tree_free_nodes(tr));
    for (int c = 0; c <= t.nodes_per_leaf(); ++c) {
      ASSERT_EQ(a.leaves_with_free_count(tr, c),
                b.leaves_with_free_count(tr, c))
          << "tree " << tr << " count " << c;
    }
    for (int i = 0; i < t.l2_per_tree(); ++i) {
      ASSERT_EQ(a.free_l2_up(tr, i), b.free_l2_up(tr, i));
      ASSERT_EQ(a.healthy_l2_up(tr, i), b.healthy_l2_up(tr, i));
      ASSERT_EQ(a.free_l2_up_count(tr, i), b.free_l2_up_count(tr, i));
      for (const double demand : {0.5, 1.0, 2.0}) {
        ASSERT_EQ(a.l2_up_with_bandwidth(tr, i, demand),
                  b.l2_up_with_bandwidth(tr, i, demand));
      }
      for (int j = 0; j < t.spines_per_group(); ++j) {
        ASSERT_DOUBLE_EQ(a.residual_l2_up(tr, i, j),
                         b.residual_l2_up(tr, i, j));
      }
    }
  }
}

int random_set_bit(Rng& rng, Mask m) {
  std::uint64_t k = rng.below(static_cast<std::uint64_t>(popcount(m)));
  while (k-- > 0) m &= m - 1;
  return lowest_bit(m);
}

/// A small allocation drawn from currently-free resources. May still be
/// rejected by can_apply (duplicates across picks, residual shortfall);
/// callers gate on that.
Allocation random_alloc(Rng& rng, const ClusterState& s, JobId id) {
  const FatTree& t = s.topo();
  Allocation a;
  a.job = id;
  if (rng.chance(0.3)) a.bandwidth = rng.chance(0.5) ? 0.5 : 2.0;
  const int leaf_picks = static_cast<int>(rng.between(1, 2));
  for (int k = 0; k < leaf_picks; ++k) {
    const LeafId l =
        static_cast<LeafId>(rng.below(static_cast<std::uint64_t>(
            t.total_leaves())));
    Mask nodes = s.free_nodes(l);
    const int node_picks = static_cast<int>(rng.between(0, 2));
    for (int n = 0; n < node_picks && nodes != 0; ++n) {
      const int bit = random_set_bit(rng, nodes);
      nodes &= ~(Mask{1} << bit);
      a.nodes.push_back(t.node_id(l, bit));
    }
    const Mask up = s.free_leaf_up(l);
    if (up != 0 && rng.chance(0.6)) {
      a.leaf_wires.push_back(LeafWire{l, random_set_bit(rng, up)});
    }
  }
  const TreeId tr = static_cast<TreeId>(
      rng.below(static_cast<std::uint64_t>(t.trees())));
  const int i = static_cast<int>(
      rng.below(static_cast<std::uint64_t>(t.l2_per_tree())));
  const Mask l2 = s.free_l2_up(tr, i);
  if (l2 != 0 && rng.chance(0.4)) {
    a.l2_wires.push_back(L2Wire{tr, i, random_set_bit(rng, l2)});
  }
  a.requested_nodes = static_cast<int>(a.nodes.size());
  return a;
}

void random_health_flip(Rng& rng, ClusterState& s, bool fail) {
  const FatTree& t = s.topo();
  switch (rng.below(3)) {
    case 0: {
      const NodeId n = static_cast<NodeId>(
          rng.below(static_cast<std::uint64_t>(t.total_nodes())));
      if (fail) {
        s.fail_node(n);
      } else {
        s.repair_node(n);
      }
      break;
    }
    case 1: {
      const LeafId l = static_cast<LeafId>(
          rng.below(static_cast<std::uint64_t>(t.total_leaves())));
      const int i = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(t.l2_per_tree())));
      if (fail) {
        s.fail_leaf_up(l, i);
      } else {
        s.repair_leaf_up(l, i);
      }
      break;
    }
    default: {
      const TreeId tr = static_cast<TreeId>(
          rng.below(static_cast<std::uint64_t>(t.trees())));
      const int i = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(t.l2_per_tree())));
      const int j = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(t.spines_per_group())));
      if (fail) {
        s.fail_l2_up(tr, i, j);
      } else {
        s.repair_l2_up(tr, i, j);
      }
      break;
    }
  }
}

/// From-scratch rebuild of `s`: a fresh state with the same live
/// allocations applied, then the same primitives failed. Allocations go
/// first because failing an allocated resource is legal but applying onto
/// a failed one is not.
ClusterState rebuild(const ClusterState& s,
                     const std::vector<Allocation>& live) {
  const FatTree& t = s.topo();
  ClusterState fresh(t, s.usable_bandwidth());
  for (const Allocation& a : live) fresh.apply(a);
  for (NodeId n = 0; n < t.total_nodes(); ++n) {
    if (!s.node_healthy(n)) fresh.fail_node(n);
  }
  for (LeafId l = 0; l < t.total_leaves(); ++l) {
    for (int i = 0; i < t.l2_per_tree(); ++i) {
      if (!s.leaf_up_healthy(l, i)) fresh.fail_leaf_up(l, i);
    }
  }
  for (TreeId tr = 0; tr < t.trees(); ++tr) {
    for (int i = 0; i < t.l2_per_tree(); ++i) {
      for (int j = 0; j < t.spines_per_group(); ++j) {
        if (!s.l2_up_healthy(tr, i, j)) fresh.fail_l2_up(tr, i, j);
      }
    }
  }
  return fresh;
}

TEST(ClusterStateProperty, InterleavedMutationsMatchRebuild) {
  const FatTree t(4, 4, 4);
  Rng rng(0xC0FFEE123ULL);
  ClusterState s(t, 4.0);
  std::vector<Allocation> live;
  JobId next_job = 1;

  for (int iter = 0; iter < 400; ++iter) {
    const std::uint64_t op = rng.below(8);
    if (op < 3) {
      const Allocation a = random_alloc(rng, s, next_job++);
      if (s.can_apply(a)) {
        s.apply(a);
        live.push_back(a);
      }
    } else if (op < 5 && !live.empty()) {
      const std::size_t k = static_cast<std::size_t>(
          rng.below(static_cast<std::uint64_t>(live.size())));
      s.release(live[k]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
    } else if (op == 5) {
      random_health_flip(rng, s, /*fail=*/true);
    } else if (op == 6) {
      random_health_flip(rng, s, /*fail=*/false);
    } else {
      // Transaction scope: speculate (placements, releases, health
      // flips, a nested inner transaction), roll everything back, and
      // require the state — revision included — to be bit-identical to
      // the snapshot taken before the transaction opened.
      const ClusterState snapshot = s;
      const std::uint64_t revision_before = s.revision();
      {
        ClusterState::Txn txn(s);
        ASSERT_TRUE(s.in_txn());
        const Allocation spec = random_alloc(rng, s, next_job++);
        if (s.can_apply(spec)) s.apply(spec);
        random_health_flip(rng, s, rng.chance(0.5));
        if (!live.empty() && rng.chance(0.5)) {
          s.release(live[static_cast<std::size_t>(rng.below(
              static_cast<std::uint64_t>(live.size())))]);
        }
        if (rng.chance(0.5)) {
          ClusterState::Txn inner(s);
          random_health_flip(rng, s, rng.chance(0.5));
          const Allocation inner_spec = random_alloc(rng, s, next_job++);
          if (s.can_apply(inner_spec)) s.apply(inner_spec);
          // `inner` rolls back on scope exit.
        }
        txn.rollback();
      }
      ASSERT_FALSE(s.in_txn());
      EXPECT_EQ(s.revision(), revision_before);
      expect_states_equal(s, snapshot);
    }
    ASSERT_TRUE(s.check_invariants()) << "iteration " << iter;
    if (iter % 64 == 63) expect_states_equal(s, rebuild(s, live));
  }
  expect_states_equal(s, rebuild(s, live));
}

TEST(ClusterState, CopySemanticsForShadowState) {
  const FatTree t(4, 4, 4);
  ClusterState s(t);
  const Allocation a = tiny_alloc(t);
  s.apply(a);
  ClusterState shadow = s;  // the EASY scheduler's copy
  shadow.release(a);
  EXPECT_EQ(shadow.total_free_nodes(), t.total_nodes());
  EXPECT_EQ(s.total_free_nodes(), t.total_nodes() - 3);  // original untouched
}

}  // namespace
}  // namespace jigsaw
