// Write-ahead log framing: round-trip, longest-valid-prefix recovery
// under random truncation and bit flips, and recovery idempotence.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "service/wal.hpp"
#include "util/rng.hpp"

namespace jigsaw::service {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // PID + test name: ctest runs each test in its own process, so an
    // address-based suffix would collide across parallel workers.
    path_ = ::testing::TempDir() + "wal_test_" +
            std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".wal";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string read_file() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  void write_file(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// Append `n` records with deterministic payloads; returns them.
  std::vector<WalRecord> append_records(std::size_t n) {
    WalWriter writer;
    std::string error;
    EXPECT_TRUE(writer.open(path_, &error)) << error;
    std::vector<WalRecord> written;
    for (std::size_t k = 0; k < n; ++k) {
      WalRecord rec;
      rec.type = static_cast<WalRecordType>(1 + k % 6);
      rec.payload = "{\"k\":" + std::to_string(k) + ",\"pad\":\"" +
                    std::string(k % 37, 'x') + "\"}";
      EXPECT_TRUE(writer.append(rec.type, rec.payload, &error)) << error;
      written.push_back(std::move(rec));
    }
    EXPECT_TRUE(writer.sync(&error)) << error;
    return written;
  }

  std::string path_;
};

TEST_F(WalTest, MissingFileReadsEmpty) {
  const WalReadResult result = read_wal(path_ + ".absent");
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.valid_bytes, 0u);
  EXPECT_EQ(result.file_bytes, 0u);
  EXPECT_FALSE(result.header_ok);
  EXPECT_TRUE(result.tail_error.empty());
}

TEST_F(WalTest, EmptyLogHasHeaderOnly) {
  WalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.open(path_, &error)) << error;
  writer.close();
  const WalReadResult result = read_wal(path_);
  EXPECT_TRUE(result.header_ok);
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.valid_bytes, 8u);
  EXPECT_EQ(result.file_bytes, 8u);
}

TEST_F(WalTest, RoundTrip) {
  const std::vector<WalRecord> written = append_records(25);
  const WalReadResult result = read_wal(path_);
  EXPECT_TRUE(result.header_ok);
  EXPECT_TRUE(result.tail_error.empty()) << result.tail_error;
  ASSERT_EQ(result.records.size(), written.size());
  for (std::size_t k = 0; k < written.size(); ++k) {
    EXPECT_EQ(result.records[k].type, written[k].type);
    EXPECT_EQ(result.records[k].payload, written[k].payload);
  }
  EXPECT_EQ(result.valid_bytes, result.file_bytes);
}

TEST_F(WalTest, ReopenAppends) {
  append_records(5);
  {
    WalWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path_, &error)) << error;
    ASSERT_TRUE(writer.append(WalRecordType::kDrain, "{}", &error)) << error;
  }
  const WalReadResult result = read_wal(path_);
  ASSERT_EQ(result.records.size(), 6u);
  EXPECT_EQ(result.records.back().type, WalRecordType::kDrain);
}

TEST_F(WalTest, BadMagicRejected) {
  write_file("NOTAWAL!somebytes");
  const WalReadResult result = read_wal(path_);
  EXPECT_FALSE(result.header_ok);
  EXPECT_EQ(result.valid_bytes, 0u);
  EXPECT_FALSE(result.tail_error.empty());
}

TEST_F(WalTest, UnknownTypeStopsScan) {
  append_records(3);
  std::string bytes = read_file();
  // Hand-craft a frame with type 99 after the valid records.
  const std::string payload = "{}";
  std::string frame;
  auto put32 = [&frame](std::uint32_t v) {
    for (int k = 0; k < 4; ++k)
      frame.push_back(static_cast<char>(v >> (8 * k)));
  };
  put32(static_cast<std::uint32_t>(payload.size()));
  put32(99);
  frame += payload;
  std::string crc_input;
  for (int k = 0; k < 4; ++k)
    crc_input.push_back(static_cast<char>(99u >> (8 * k)));
  crc_input += payload;
  put32(crc32(crc_input.data(), crc_input.size()));
  const std::uint64_t valid_before = bytes.size();
  write_file(bytes + frame);
  const WalReadResult result = read_wal(path_);
  EXPECT_EQ(result.records.size(), 3u);
  EXPECT_EQ(result.valid_bytes, valid_before);
  EXPECT_FALSE(result.tail_error.empty());
}

// The recovery contract, as a randomized property: however the tail is
// damaged — truncated at any byte, or any single bit flipped — read_wal
// returns exactly the records whose frames lie wholly inside the
// undamaged prefix, and recovery (truncate to valid_bytes, re-read) is
// idempotent.
TEST_F(WalTest, TruncationRecoversLongestValidPrefix) {
  const std::vector<WalRecord> written = append_records(20);
  const std::string bytes = read_file();
  const WalReadResult intact = read_wal(path_);
  ASSERT_EQ(intact.records.size(), written.size());
  // Frame boundaries: offsets[k] = end of record k's frame.
  std::vector<std::uint64_t> ends;
  for (std::size_t k = 1; k < intact.records.size(); ++k) {
    ends.push_back(intact.records[k].offset);
  }
  ends.push_back(intact.valid_bytes);

  Rng rng(0x5EEDF00DULL);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t cut = static_cast<std::size_t>(
        rng.below(bytes.size()));
    write_file(bytes.substr(0, cut));
    const WalReadResult result = read_wal(path_);
    // Expected surviving records: frames entirely within [0, cut).
    std::size_t expect = 0;
    while (expect < ends.size() && ends[expect] <= cut) ++expect;
    EXPECT_EQ(result.records.size(), expect) << "cut at " << cut;
    for (std::size_t k = 0; k < result.records.size(); ++k) {
      EXPECT_EQ(result.records[k].payload, written[k].payload);
    }
    if (cut < 8) {
      EXPECT_EQ(result.valid_bytes, 0u);
    } else {
      EXPECT_EQ(result.valid_bytes, expect == 0 ? 8u : ends[expect - 1]);
    }
    // Idempotence: cutting to valid_bytes and re-reading yields the same
    // prefix with no tail error.
    write_file(bytes.substr(0, static_cast<std::size_t>(result.valid_bytes)));
    const WalReadResult again = read_wal(path_);
    EXPECT_EQ(again.records.size(), result.records.size());
    EXPECT_EQ(again.valid_bytes, result.valid_bytes);
    EXPECT_TRUE(cut < 8 || again.tail_error.empty()) << again.tail_error;
  }
}

TEST_F(WalTest, BitFlipRecoversPrefixBeforeDamage) {
  const std::vector<WalRecord> written = append_records(20);
  const std::string bytes = read_file();
  const WalReadResult intact = read_wal(path_);
  std::vector<std::uint64_t> ends;
  for (std::size_t k = 1; k < intact.records.size(); ++k) {
    ends.push_back(intact.records[k].offset);
  }
  ends.push_back(intact.valid_bytes);

  Rng rng(0xB17F11BULL);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t at = static_cast<std::size_t>(
        rng.below(bytes.size()));
    const int bit = static_cast<int>(rng.below(8));
    std::string damaged = bytes;
    damaged[at] = static_cast<char>(damaged[at] ^ (1 << bit));
    write_file(damaged);
    const WalReadResult result = read_wal(path_);
    // Every record whose frame ends at or before the damaged byte must
    // survive intact; the damaged record itself must not (a flip in a
    // length field may also take down the scan earlier, never later).
    std::size_t unaffected = 0;
    while (unaffected < ends.size() && ends[unaffected] <= at) ++unaffected;
    EXPECT_LE(result.records.size(), written.size());
    if (at < 8) {
      // Header damage: nothing survives.
      EXPECT_EQ(result.valid_bytes, 0u);
      EXPECT_TRUE(result.records.empty());
    } else {
      EXPECT_GE(result.records.size(), unaffected) << "flip at " << at;
      // A flipped payload/crc byte must be caught: the record containing
      // the damage never appears with a wrong payload.
      for (std::size_t k = 0; k < result.records.size(); ++k) {
        EXPECT_EQ(result.records[k].payload, written[k].payload);
        EXPECT_EQ(result.records[k].type, written[k].type);
      }
    }
    // Idempotence after truncating the damage away.
    write_file(
        damaged.substr(0, static_cast<std::size_t>(result.valid_bytes)));
    const WalReadResult again = read_wal(path_);
    EXPECT_EQ(again.records.size(), result.records.size());
    EXPECT_EQ(again.valid_bytes, result.valid_bytes);
  }
}

TEST_F(WalTest, WriterTruncateDropsTornTail) {
  append_records(10);
  const std::string bytes = read_file();
  write_file(bytes.substr(0, bytes.size() - 3));  // torn final frame
  const WalReadResult torn = read_wal(path_);
  EXPECT_EQ(torn.records.size(), 9u);
  EXPECT_FALSE(torn.tail_error.empty());

  WalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.open(path_, &error, torn.valid_bytes)) << error;
  ASSERT_TRUE(writer.append(WalRecordType::kCancel, "{\"job\":1}", &error))
      << error;
  writer.close();
  const WalReadResult result = read_wal(path_);
  EXPECT_TRUE(result.tail_error.empty()) << result.tail_error;
  ASSERT_EQ(result.records.size(), 10u);
  EXPECT_EQ(result.records.back().payload, "{\"job\":1}");
}

TEST_F(WalTest, Crc32KnownVector) {
  // The IEEE CRC-32 check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
}

}  // namespace
}  // namespace jigsaw::service
