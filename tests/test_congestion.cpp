#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/jigsaw_allocator.hpp"
#include "routing/congestion.hpp"
#include "test_helpers.hpp"

namespace jigsaw {
namespace {

using testing::must_allocate;

TEST(Congestion, IsolatedJigsawJobsNeverInterfere) {
  // The paper's core guarantee: with partition-confined routing over
  // Jigsaw allocations, no link carries two jobs' traffic.
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  std::vector<Allocation> running;
  for (const int size : {11, 20, 7, 16}) {
    running.push_back(
        must_allocate(jigsaw, state, static_cast<JobId>(running.size()),
                      size));
  }
  Rng rng(1);
  const CongestionReport report =
      analyze_congestion(t, running, rng, /*partition_routing=*/true);
  EXPECT_EQ(report.max_jobs_per_link, running.empty() ? 0 : 1);
  EXPECT_EQ(report.interfered_flows, 0);
}

TEST(Congestion, BaselinePlacementsInterfereUnderDmodk) {
  // Fragmented baseline placements under static routing share links —
  // the effect §2.2 reports. D-mod-k picks the uplink by the
  // destination's in-leaf index, so two jobs collide on a leaf's uplinks
  // when they share source leaves and their destination in-leaf indices
  // overlap: job 0 owns slots {0,1} of leaves 0-3; job 1 owns slots
  // {2,3} there but slots {0,1} of leaves 4-7.
  const FatTree t(4, 4, 4);
  std::vector<Allocation> running(2);
  for (LeafId l = 0; l < 4; ++l) {
    running[0].nodes.push_back(t.node_id(l, 0));
    running[0].nodes.push_back(t.node_id(l, 1));
    running[1].nodes.push_back(t.node_id(l, 2));
    running[1].nodes.push_back(t.node_id(l, 3));
    running[1].nodes.push_back(t.node_id(l + 4, 0));
    running[1].nodes.push_back(t.node_id(l + 4, 1));
  }
  running[0].job = 0;
  running[1].job = 1;
  running[0].requested_nodes = 8;
  running[1].requested_nodes = 16;
  Rng rng(2);
  const CongestionReport report =
      analyze_congestion(t, running, rng, /*partition_routing=*/false);
  EXPECT_GE(report.max_jobs_per_link, 2);
  EXPECT_GT(report.interfered_flows, 0);
  EXPECT_GE(report.mean_job_slowdown, 1.0);
}

TEST(Congestion, SingleJobAloneHasNoInterference) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const BaselineAllocator baseline;
  std::vector<Allocation> running{must_allocate(baseline, state, 0, 32)};
  Rng rng(3);
  const CongestionReport report =
      analyze_congestion(t, running, rng, /*partition_routing=*/false);
  EXPECT_LE(report.max_jobs_per_link, 1);
  EXPECT_EQ(report.interfered_flows, 0);
  EXPECT_GT(report.total_flows, 0);
}

TEST(Congestion, EmptySystem) {
  const FatTree t(4, 4, 4);
  Rng rng(4);
  const CongestionReport report = analyze_congestion(t, {}, rng, false);
  EXPECT_EQ(report.total_flows, 0);
  EXPECT_EQ(report.max_link_load, 0);
  EXPECT_DOUBLE_EQ(report.mean_job_slowdown, 1.0);
}

TEST(Congestion, TinyJobsContributeNoFlows) {
  const FatTree t(4, 4, 4);
  Allocation one;
  one.job = 0;
  one.requested_nodes = 1;
  one.nodes = {0};
  Rng rng(5);
  const CongestionReport report = analyze_congestion(t, {one}, rng, false);
  EXPECT_EQ(report.total_flows, 0);
}

}  // namespace
}  // namespace jigsaw
