// §3.2 blocked-reason attribution: golden invariants on Synth-16.
//
// Two contracts pinned here, per scheme:
//
//  1. Attribution is total and consistent: every failed head-placement
//     pass (counted independently via the `sched.head_blocked` trace
//     events the scheduler emits on exactly those passes) is attributed
//     to exactly one §3.2 condition class, so
//         sum(sched.blocked.*) == sched.head_blocked_passes
//                              == #(sched.head_blocked events).
//     A diagnose() that returned kNone on a genuinely failed pass, or a
//     double-counted pass, breaks the equality.
//
//  2. Observability never perturbs scheduling: the same trace replayed
//     with metrics + tracing fully on produces SimMetrics bit-identical
//     (%.17g) to the all-disabled run — diagnose() is read-only and
//     runs only after the placement decision is already made.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "core/baseline.hpp"
#include "core/jigsaw_allocator.hpp"
#include "core/laas.hpp"
#include "core/lc.hpp"
#include "core/ta.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/observer.hpp"
#include "obs/sink.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"

namespace jigsaw {
namespace {

std::string g17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Occurrences of the exact event name in a JSONL trace. The trailing
/// quote keeps `sched.head_blocked_passes` (a counter name that never
/// appears in traces anyway) from matching.
std::size_t count_events(const std::string& jsonl, const std::string& name) {
  const std::string needle = "\"" + name + "\"";
  std::size_t count = 0;
  for (std::size_t pos = jsonl.find(needle); pos != std::string::npos;
       pos = jsonl.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(BlockedReason, AttributionTotalAndObsNeutralOnSynth16) {
  Trace trace = named_synthetic("Synth-16", 800);
  Rng rng(0xBADC0FFEEULL);
  assign_bandwidth_classes(trace, rng);
  const FatTree topo = FatTree::from_radix(16);

  const BaselineAllocator baseline;
  const LeastConstrainedAllocator lcs(true);
  const JigsawAllocator jigsaw;
  const LaasAllocator laas;
  const TaAllocator ta;
  const Allocator* schemes[] = {&baseline, &lcs, &jigsaw, &laas, &ta};

  for (const Allocator* alloc : schemes) {
    SCOPED_TRACE(alloc->name());

    // Reference run: observability fully disabled (the zero-cost path).
    const SimMetrics off = simulate(topo, *alloc, trace, SimConfig{});

    // Instrumented run: metrics registry + JSONL event trace both live.
    obs::MetricsRegistry registry;
    std::ostringstream events;
    const std::unique_ptr<obs::TraceSink> sink =
        obs::make_sink("jsonl", events);
    SimConfig config;
    config.obs.metrics = &registry;
    config.obs.sink = sink.get();
    const SimMetrics on = simulate(topo, *alloc, trace, config);
    sink->finish();

    // (2) bit-identical scheduling outcome, %.17g.
    EXPECT_EQ(g17(on.steady_utilization), g17(off.steady_utilization));
    EXPECT_EQ(g17(on.makespan), g17(off.makespan));
    EXPECT_EQ(g17(on.mean_turnaround_all), g17(off.mean_turnaround_all));
    EXPECT_EQ(g17(on.mean_wait), g17(off.mean_wait));
    EXPECT_EQ(on.search_steps, off.search_steps);
    EXPECT_EQ(on.allocate_calls, off.allocate_calls);
    EXPECT_EQ(on.completed, off.completed);

    // (1) the counters sum to the independently-counted failed passes.
    const std::size_t failed_passes =
        count_events(events.str(), "sched.head_blocked");
    const obs::Counter* total =
        registry.find_counter("sched.head_blocked_passes");
    ASSERT_NE(total, nullptr);
    std::uint64_t reason_sum = 0;
    for (const auto& [name, counter] : registry.counters()) {
      if (name.rfind("sched.blocked.", 0) == 0) reason_sum += counter.value();
    }
    EXPECT_EQ(total->value(), reason_sum);
    EXPECT_EQ(total->value(), static_cast<std::uint64_t>(failed_passes));
    // Synth-16 at 800 jobs queues heavily under every scheme; a run
    // with zero blocked passes means the attribution never fired.
    EXPECT_GT(total->value(), 0u);
  }
}

}  // namespace
}  // namespace jigsaw
