// Live defragmentation (src/defrag/): consolidation metric, bounded
// migration planner, and the engine's stall-detector integration.
//
// The engine tests drive a hand-crafted fragmented cluster where the
// head job is provably unblockable by exactly one migration: on
// FatTree(4, 4, 4), two 2-node jobs pin two leaves of tree 0 after
// their leaf-mates complete, three 16-node jobs hold the other trees,
// and the 12-node head needs three fully-free leaves. Moving either
// pinned job into the other's leaf consolidates tree 0 and the head
// starts ~9900 simulated seconds earlier than it would defrag-off.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/fragmentation.hpp"
#include "core/jigsaw_allocator.hpp"
#include "defrag/defrag.hpp"
#include "service/protocol.hpp"
#include "sim/engine.hpp"
#include "test_helpers.hpp"
#include "topology/fat_tree.hpp"
#include "trace/synthetic.hpp"

namespace jigsaw {
namespace {

// ---------------------------------------------------------------------------
// Consolidation metric.
// ---------------------------------------------------------------------------

TEST(DefragConsolidation, PristineClusterIsOneSolidBlock) {
  const FatTree t(4, 4, 4);
  const ClusterState state(t);
  const ConsolidationReport r = consolidation(state);
  EXPECT_EQ(r.free_nodes, 64);
  EXPECT_EQ(r.largest_tree_block, 16);   // one whole subtree
  EXPECT_EQ(r.largest_span_block, 64);   // 4 trees x 4 whole leaves x 4
  EXPECT_EQ(r.largest_block, 64);
  EXPECT_DOUBLE_EQ(r.score, 1.0);
}

TEST(DefragConsolidation, FullClusterScoresOneByConvention) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  const auto a = jigsaw.allocate(state, JobRequest{1, 64, 0.0});
  ASSERT_TRUE(a.has_value());
  state.apply(*a);
  const ConsolidationReport r = consolidation(state);
  EXPECT_EQ(r.free_nodes, 0);
  EXPECT_EQ(r.largest_block, 0);
  EXPECT_DOUBLE_EQ(r.score, 1.0);
}

TEST(DefragConsolidation, SingleHoleHandComputed) {
  // Two busy nodes in one leaf: that tree's histogram is [4,4,4,2], so
  // its best rectangle is 3 leaves x 4 = 12; a clean tree gives 16; the
  // whole-leaf span over [4,4,4,3] trees peaks at 48 (3 trees x 4 leaves
  // or 4 trees x 3 leaves).
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  Allocation filler;
  filler.job = 7;
  filler.requested_nodes = 2;
  filler.nodes = {t.node_id(0, 0), t.node_id(0, 1)};
  state.apply(filler);
  const ConsolidationReport r = consolidation(state);
  EXPECT_EQ(r.free_nodes, 62);
  EXPECT_EQ(r.largest_tree_block, 16);
  EXPECT_EQ(r.largest_span_block, 48);
  EXPECT_EQ(r.largest_block, 48);
  EXPECT_DOUBLE_EQ(r.score, 48.0 / 62.0);
}

TEST(DefragConsolidation, ScatteredHolesShatterTheScore) {
  // One busy node in every leaf: no whole leaf survives anywhere, so the
  // span block is 0 and the best block is a single tree's 4 leaves x 3.
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  for (LeafId l = 0; l < t.total_leaves(); ++l) {
    Allocation filler;
    filler.job = 100 + l;
    filler.requested_nodes = 1;
    filler.nodes = {t.node_id(l, 0)};
    state.apply(filler);
  }
  const ConsolidationReport r = consolidation(state);
  EXPECT_EQ(r.free_nodes, 48);
  EXPECT_EQ(r.largest_tree_block, 12);
  EXPECT_EQ(r.largest_span_block, 0);
  EXPECT_EQ(r.largest_block, 12);
  EXPECT_DOUBLE_EQ(r.score, 0.25);
}

// ---------------------------------------------------------------------------
// Planner.
// ---------------------------------------------------------------------------

/// The crafted fragmented state: tree 0 holds A(2) in one leaf and B(2)
/// in another (their leaf-mates already gone), trees 1-3 are fully held
/// by 16-node jobs. Returns the held allocations in [A, B, E, F, G]
/// order. 12 nodes are free but a 12-node Jigsaw job needs three fully
/// free leaves — only a migration of A or B provides them.
std::vector<Allocation> crafted_state(const JigsawAllocator& jigsaw,
                                      ClusterState& state) {
  std::vector<Allocation> held;
  const auto place = [&](JobId id, int nodes) {
    return testing::must_allocate(jigsaw, state, id, nodes);
  };
  const Allocation c = place(1, 2);  // packs a leaf with A
  held.push_back(place(2, 2));       // A
  const Allocation d = place(3, 2);  // packs a leaf with B
  held.push_back(place(4, 2));       // B
  held.push_back(place(5, 16));      // E: whole tree
  held.push_back(place(6, 16));      // F
  held.push_back(place(7, 16));      // G
  state.release(c);
  state.release(d);
  EXPECT_EQ(state.total_free_nodes(), 12);
  return held;
}

std::vector<MigrationCandidate> as_candidates(
    const std::vector<Allocation>& held) {
  std::vector<MigrationCandidate> candidates;
  for (const Allocation& a : held) {
    candidates.push_back(MigrationCandidate{a.job, &a, a.bandwidth});
  }
  return candidates;
}

TEST(DefragPlanner, FindsSingleMovePlanWithoutPerturbingState) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  const std::vector<Allocation> held = crafted_state(jigsaw, state);
  const JobRequest head{8, 12, 0.0};
  ASSERT_FALSE(jigsaw.allocate(state, head).has_value());  // genuinely stuck

  const ClusterState::RawState before = state.raw_state();
  DefragPlannerStats stats;
  const DefragPlanner planner(jigsaw, DefragConfig{});
  const auto plan =
      planner.plan(state, head, as_candidates(held), &stats);

  // Planning is probe-only: masks and the revision counter come back
  // bit-identical.
  const ClusterState::RawState after = state.raw_state();
  EXPECT_EQ(after.free_nodes, before.free_nodes);
  EXPECT_EQ(after.revision, before.revision);
  EXPECT_TRUE(state.check_invariants());

  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->moves.size(), 1u);  // shallowest depth wins
  EXPECT_EQ(plan->head, 8);
  // A and B are interchangeable; the deterministic tie-break picks the
  // lower job id, and packing tree 0 leaves the cluster fully solid.
  EXPECT_EQ(plan->moves[0].job, 2);
  EXPECT_DOUBLE_EQ(plan->score, 1.0);
  EXPECT_GT(stats.probes, 0u);
  EXPECT_GT(stats.plans_scored, 0u);

  // Executing the plan really unblocks the head.
  ASSERT_TRUE(apply_plan_moves(state, *plan));
  EXPECT_TRUE(state.check_invariants());
  EXPECT_TRUE(jigsaw.allocate(state, head).has_value());
}

TEST(DefragPlanner, ProbeBudgetAndMoveCapAreHardLimits) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  const std::vector<Allocation> held = crafted_state(jigsaw, state);
  const JobRequest head{8, 12, 0.0};

  DefragConfig no_probes;
  no_probes.max_probes = 0;
  DefragPlannerStats stats;
  EXPECT_FALSE(DefragPlanner(jigsaw, no_probes)
                   .plan(state, head, as_candidates(held), &stats)
                   .has_value());
  EXPECT_EQ(stats.probes, 0u);

  DefragConfig no_moves;
  no_moves.max_moves = 0;
  EXPECT_FALSE(DefragPlanner(jigsaw, no_moves)
                   .plan(state, head, as_candidates(held))
                   .has_value());
}

TEST(DefragPlanner, NearFinishedVictimsRankBelowLongRunners) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  const std::vector<Allocation> held = crafted_state(jigsaw, state);
  const JobRequest head{8, 12, 0.0};

  // A (job 2) and B (job 4) are interchangeable consolidation-wise; with
  // A about to finish, its gain is discounted by 1/(1 + migration_cost)
  // and the long-running B outranks it, so the planner migrates B.
  std::vector<MigrationCandidate> candidates = as_candidates(held);
  candidates[0].remaining = 1.0;      // A: nearly done, poor victim
  candidates[1].remaining = 10000.0;  // B: long runner
  DefragConfig config;
  auto plan = DefragPlanner(jigsaw, config).plan(state, head, candidates);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->moves.size(), 1u);
  EXPECT_EQ(plan->moves[0].job, 4);

  // Keeping only the top-ranked candidate prunes the near-finished job
  // out of the search entirely — the single survivor is still B.
  config.max_candidates = 1;
  plan = DefragPlanner(jigsaw, config).plan(state, head, candidates);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->moves.size(), 1u);
  EXPECT_EQ(plan->moves[0].job, 4);

  // With no runtime estimates (the infinite default) the discount is
  // inert and the historical lower-job-id tie-break still picks A.
  plan = DefragPlanner(jigsaw, DefragConfig{})
             .plan(state, head, as_candidates(held));
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->moves[0].job, 2);
}

TEST(DefragPlanner, NoCandidatesOrImmovableJobsYieldNoPlan) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  std::vector<Allocation> held = crafted_state(jigsaw, state);
  const DefragPlanner planner(jigsaw, DefragConfig{});
  EXPECT_FALSE(planner.plan(state, JobRequest{8, 12, 0.0}, {}).has_value());
  // Only the whole-tree jobs offered: releasing one lets the head in but
  // the 16-node victim can never be re-placed, so every combo fails.
  std::vector<Allocation> trees_only(held.begin() + 2, held.end());
  EXPECT_FALSE(planner
                   .plan(state, JobRequest{8, 12, 0.0},
                         as_candidates(trees_only))
                   .has_value());
}

// ---------------------------------------------------------------------------
// Engine integration.
// ---------------------------------------------------------------------------

/// The crafted trace (see file header): ids 1..7 arrive at t=0 in the
/// packing order above; the 2-node leaf-mates run 100 s, everything else
/// 10000 s; the 12-node head H=8 arrives at t=10.
std::vector<Job> crafted_trace() {
  std::vector<Job> jobs;
  const auto add = [&](JobId id, double arrival, int nodes, double runtime) {
    Job j;
    j.id = id;
    j.arrival = arrival;
    j.nodes = nodes;
    j.runtime = runtime;
    j.bandwidth = 0.0;
    jobs.push_back(j);
  };
  add(1, 0.0, 2, 100.0);      // C: packs a leaf with A, exits early
  add(2, 0.0, 2, 10000.0);    // A: the migration victim
  add(3, 0.0, 2, 100.0);      // D: packs a leaf with B, exits early
  add(4, 0.0, 2, 10000.0);    // B
  add(5, 0.0, 16, 10000.0);   // E/F/G: hold trees 1-3
  add(6, 0.0, 16, 10000.0);
  add(7, 0.0, 16, 10000.0);
  add(8, 10.0, 12, 50.0);     // H: the stalled head
  return jobs;
}

/// Drop the two wall-clock timing fields from a metrics_json string so
/// the rest can be compared bit-for-bit across runs.
std::string scrub_wall_fields(std::string text) {
  for (const char* key :
       {"\"sched_wall_seconds\":", "\"mean_sched_time_per_job\":"}) {
    const std::size_t at = text.find(key);
    if (at == std::string::npos) continue;
    std::size_t end = text.find(',', at);
    if (end == std::string::npos) end = text.find('}', at);
    text.erase(at, end - at + 1);
  }
  return text;
}

SimMetrics run_crafted(const SimConfig& config, double* head_start,
                       std::string* metrics = nullptr) {
  const FatTree topo(4, 4, 4);
  const JigsawAllocator jigsaw;
  SimEngine engine(topo, jigsaw, config);
  for (const Job& j : crafted_trace()) engine.submit(j);
  engine.run();
  const SimMetrics m = engine.finish();
  if (head_start != nullptr) {
    const auto status = engine.status(8);
    *head_start = status.has_value() ? status->start : -1.0;
  }
  if (metrics != nullptr) *metrics = service::metrics_json(m);
  return m;
}

TEST(DefragEngine, MigrationUnblocksTheHeadJob) {
  SimConfig config;
  config.defrag.enabled = true;
  config.defrag.migration_cost = 40.0;
  double head_start = -1.0;
  const SimMetrics m = run_crafted(config, &head_start);

  EXPECT_EQ(m.migration_plans, 1u);
  EXPECT_EQ(m.migration_plans_failed, 0u);
  EXPECT_EQ(m.migration_plans_aborted, 0u);
  EXPECT_EQ(m.migrations, 1u);
  EXPECT_EQ(m.head_unblocks, 1u);
  EXPECT_EQ(m.head_unblock_failures, 0u);
  // One 2-node victim paused for the migration cost.
  EXPECT_DOUBLE_EQ(m.migration_node_seconds, 2.0 * 40.0);
  // The head starts the moment the leaf-mates finish instead of waiting
  // out the 10000 s jobs.
  EXPECT_DOUBLE_EQ(head_start, 100.0);
  EXPECT_EQ(m.completed, 8u);
}

TEST(DefragEngine, DisabledIsInertRegardlessOfOtherKnobs) {
  double off_start = -1.0;
  std::string off_metrics;
  run_crafted(SimConfig{}, &off_start, &off_metrics);
  EXPECT_DOUBLE_EQ(off_start, 10000.0);  // waits for the long jobs

  // Non-default knobs with enabled=false must not change a single field
  // (wall-clock timings excluded, nothing else).
  SimConfig config;
  config.defrag.migration_cost = 7.0;
  config.defrag.max_moves = 1;
  config.defrag.max_probes = 5;
  double start = -1.0;
  std::string metrics;
  const SimMetrics m = run_crafted(config, &start, &metrics);
  EXPECT_EQ(m.migration_plans, 0u);
  EXPECT_EQ(m.migrations, 0u);
  EXPECT_DOUBLE_EQ(start, off_start);

  EXPECT_EQ(scrub_wall_fields(metrics), scrub_wall_fields(off_metrics));
}

TEST(DefragEngine, ExhaustedProbeBudgetFailsOpenAndOnlyOnce) {
  // With a zero probe budget the planner can never produce a plan; the
  // run must degrade to exactly the defrag-off schedule, and the
  // (head, revision) throttle must record one failed plan, not one per
  // pass.
  SimConfig config;
  config.defrag.enabled = true;
  config.defrag.max_probes = 0;
  double head_start = -1.0;
  const SimMetrics m = run_crafted(config, &head_start);
  EXPECT_EQ(m.migration_plans, 0u);
  EXPECT_EQ(m.migration_plans_failed, 1u);
  EXPECT_EQ(m.migrations, 0u);
  EXPECT_DOUBLE_EQ(head_start, 10000.0);
  EXPECT_EQ(m.completed, 8u);
}

TEST(DefragEngine, EnabledRunsAreBitDeterministic) {
  SimConfig config;
  config.defrag.enabled = true;
  config.defrag.migration_cost = 40.0;
  std::string first;
  std::string second;
  run_crafted(config, nullptr, &first);
  run_crafted(config, nullptr, &second);
  EXPECT_EQ(scrub_wall_fields(first), scrub_wall_fields(second))
      << "defrag-on run is not deterministic";
}

TEST(DefragEngine, EnabledOnSyntheticTraceStaysDeterministic) {
  // A real workload through the defrag-enabled engine, twice: %.17g
  // metrics must match bit for bit whether or not any migration fires.
  Trace trace = named_synthetic("Synth-16", 300);
  Rng rng(0xBADC0FFEEULL);
  assign_bandwidth_classes(trace, rng);
  const FatTree topo = FatTree::from_radix(16);
  const JigsawAllocator jigsaw;
  SimConfig config;
  config.defrag.enabled = true;
  config.defrag.migration_cost = 30.0;
  std::string runs[2];
  for (std::string& out : runs) {
    SimEngine engine(topo, jigsaw, config);
    for (const Job& j : trace.jobs) engine.submit(j);
    engine.run();
    out = scrub_wall_fields(service::metrics_json(engine.finish()));
  }
  EXPECT_EQ(runs[0], runs[1]);
}

// ---------------------------------------------------------------------------
// Snapshot blob v3: in-flight migrations survive serialize/deserialize.
// ---------------------------------------------------------------------------

SimConfig snapshot_config() {
  SimConfig config;
  config.defrag.enabled = true;
  config.defrag.migration_cost = 40.0;
  return config;
}

/// Steps the engine to one of the two defrag-specific snapshot points:
/// after the planning pass (pending plan awaiting its kMigrationStart)
/// or inside the migration window (in-flight, kMigrationDone queued).
void step_to_migration_point(SimEngine& engine, bool inside_window) {
  for (const Job& j : crafted_trace()) engine.submit(j);
  engine.step();  // t=0: everything starts
  engine.step();  // t=10: head arrives, blocked on capacity
  engine.step();  // t=100: leaf-mates complete; plan adopted
  ASSERT_DOUBLE_EQ(engine.now(), 100.0);
  ASSERT_EQ(engine.migrations_in_flight(), 0);
  if (inside_window) {
    engine.step();  // t=100: migration executes, head starts
    ASSERT_EQ(engine.migrations_in_flight(), 1);
  }
}

void round_trip_from(bool inside_window) {
  const FatTree topo(4, 4, 4);
  const JigsawAllocator jigsaw;
  const SimConfig config = snapshot_config();
  SimEngine engine(topo, jigsaw, config);
  step_to_migration_point(engine, inside_window);

  std::string blob;
  std::string error;
  ASSERT_TRUE(engine.serialize(&blob, &error)) << error;

  SimEngine restored(topo, jigsaw, config);
  ASSERT_TRUE(restored.deserialize(blob, &error)) << error;
  EXPECT_EQ(restored.migrations_in_flight(), engine.migrations_in_flight());
  std::string blob2;
  ASSERT_TRUE(restored.serialize(&blob2, &error)) << error;
  EXPECT_EQ(blob, blob2) << "re-serialization is not byte-deterministic";

  engine.run();
  restored.run();
  const SimMetrics& a = engine.finish();
  const SimMetrics& b = restored.finish();
  // The restored run must still execute (or finish) the migration and
  // unblock the head.
  EXPECT_EQ(a.migrations, 1u);
  EXPECT_EQ(b.migrations, 1u);
  EXPECT_EQ(b.head_unblocks, 1u);
  EXPECT_DOUBLE_EQ(b.makespan, a.makespan);
  EXPECT_DOUBLE_EQ(b.steady_utilization, a.steady_utilization);
  EXPECT_DOUBLE_EQ(b.migration_node_seconds, a.migration_node_seconds);
}

TEST(DefragSnapshot, PendingPlanSurvivesRoundTrip) {
  round_trip_from(/*inside_window=*/false);
}

TEST(DefragSnapshot, InFlightMigrationSurvivesRoundTrip) {
  round_trip_from(/*inside_window=*/true);
}

TEST(DefragSnapshot, RejectsBlobFromDifferentDefragConfig) {
  const FatTree topo(4, 4, 4);
  const JigsawAllocator jigsaw;
  SimEngine engine(topo, jigsaw, snapshot_config());
  step_to_migration_point(engine, /*inside_window=*/true);
  std::string blob;
  std::string error;
  ASSERT_TRUE(engine.serialize(&blob, &error)) << error;

  SimConfig other = snapshot_config();
  other.defrag.migration_cost = 99.0;
  SimEngine victim(topo, jigsaw, other);
  EXPECT_FALSE(victim.deserialize(blob, &error));
  EXPECT_NE(error.find("defrag"), std::string::npos) << error;
}

}  // namespace
}  // namespace jigsaw
