#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/jigsaw_allocator.hpp"
#include "sim/scheduler.hpp"

namespace jigsaw {
namespace {

PendingJob pending(JobId id, int nodes, double runtime) {
  return PendingJob{id, nodes, 0.0, runtime};
}

TEST(EasyScheduler, StartsHeadJobsInFifoOrder) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const BaselineAllocator baseline;
  const EasyScheduler sched(baseline, 50);
  std::deque<PendingJob> queue{pending(0, 10, 100), pending(1, 20, 100),
                               pending(2, 30, 100)};
  const auto decisions = sched.schedule(0.0, state, queue, {});
  ASSERT_EQ(decisions.size(), 3u);
  EXPECT_EQ(decisions[0].pending_index, 0u);
  EXPECT_EQ(decisions[1].pending_index, 1u);
  EXPECT_EQ(decisions[2].pending_index, 2u);
}

TEST(EasyScheduler, StopsAtBlockedHeadWithoutBackfillWindow) {
  const FatTree t(4, 4, 4);  // 64 nodes
  ClusterState state(t);
  const BaselineAllocator baseline;
  const EasyScheduler sched(baseline, 0);  // no backfill
  std::deque<PendingJob> queue{pending(0, 60, 100), pending(1, 60, 100),
                               pending(2, 2, 1)};
  const auto decisions = sched.schedule(0.0, state, queue, {});
  ASSERT_EQ(decisions.size(), 1u);  // only the first 60-node job starts
}

TEST(EasyScheduler, BackfillsShortJobsBehindBlockedHead) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const BaselineAllocator baseline;
  const EasyScheduler sched(baseline, 50);
  // Job 0 occupies 60 nodes until t=100; head job 1 needs 60 (blocked,
  // shadow at t=100). Job 2 is small and short: backfillable. Job 3 is
  // small but long: only allowed if disjoint from the shadow placement —
  // with 60 of 64 nodes in the shadow, it must be rejected or disjoint.
  std::deque<PendingJob> queue{pending(0, 60, 100), pending(1, 60, 200),
                               pending(2, 4, 50), pending(3, 4, 500)};
  const auto first = sched.schedule(0.0, state, queue, {});
  ASSERT_GE(first.size(), 2u);
  EXPECT_EQ(first[0].pending_index, 0u);
  EXPECT_EQ(first[1].pending_index, 2u);  // short job backfilled
  // Job 3 (long) would overlap the shadow placement's nodes: 60-node
  // shadow + 60-node job 0 cover the machine, so job 3 must NOT start.
  for (const auto& d : first) EXPECT_NE(d.pending_index, 3u);
}

TEST(EasyScheduler, BackfillAllowsLongJobDisjointFromShadow) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const BaselineAllocator baseline;
  const EasyScheduler sched(baseline, 50);
  // Running job holds 32 nodes until t=100. Head wants 30 (fits after the
  // completion; shadow uses freed+free nodes). A long 2-node job can still
  // backfill iff its nodes avoid the 30-node shadow placement.
  std::deque<PendingJob> queue{pending(1, 60, 200), pending(2, 2, 10000)};
  std::vector<RunningJob> running;
  const BaselineAllocator alloc_for_setup;
  ClusterState setup = state;
  auto a = alloc_for_setup.allocate(setup, JobRequest{0, 32, 0.0});
  ASSERT_TRUE(a.has_value());
  state.apply(*a);
  running.push_back(RunningJob{0, 100.0, *a});
  const auto decisions = sched.schedule(0.0, state, queue, running);
  // Head blocked (needs 60, only 32 free). The 2-node job may backfill:
  // shadow placement covers 60 of 64 nodes; 2 free nodes remain outside
  // only if the shadow avoided them. Either outcome is legal; assert no
  // head start and bounded decisions.
  for (const auto& d : decisions) EXPECT_NE(d.pending_index, 0u);
  EXPECT_LE(decisions.size(), 1u);
}

TEST(EasyScheduler, WindowLimitsBackfillCandidates) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const BaselineAllocator baseline;
  const EasyScheduler sched(baseline, 1);  // examine only one candidate
  std::deque<PendingJob> queue{pending(0, 60, 100), pending(1, 60, 100),
                               pending(2, 64, 100),  // examined, cannot fit
                               pending(3, 2, 1)};    // outside the window
  const auto decisions = sched.schedule(0.0, state, queue, {});
  ASSERT_EQ(decisions.size(), 1u);  // job 0 only; job 3 never examined
}

TEST(EasyScheduler, ReservationRespectedByTopologyAllocator) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  const EasyScheduler sched(jigsaw, 50);
  // Fill three subtrees; head needs a full subtree (16), blocked until a
  // running subtree job ends at t=50. A 16-node backfill (200 s) would
  // take the last free subtree and delay the head: must be rejected.
  std::vector<RunningJob> running;
  for (TreeId tree = 0; tree < 3; ++tree) {
    auto a = jigsaw.allocate(state, JobRequest{tree, 16, 0.0});
    ASSERT_TRUE(a.has_value());
    state.apply(*a);
    running.push_back(
        RunningJob{tree, 50.0 + static_cast<double>(tree), *a});
  }
  std::deque<PendingJob> queue{pending(10, 32, 100),   // needs 2 subtrees
                               pending(11, 16, 200),   // would delay head
                               pending(12, 16, 10)};   // finishes by shadow
  const auto decisions = sched.schedule(0.0, state, queue, running);
  bool started11 = false;
  bool started12 = false;
  for (const auto& d : decisions) {
    if (queue[d.pending_index].id == 11) started11 = true;
    if (queue[d.pending_index].id == 12) started12 = true;
  }
  EXPECT_FALSE(started11);
  EXPECT_TRUE(started12);
}

TEST(EasyScheduler, ReportsPassStats) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  const EasyScheduler sched(jigsaw, 10);
  std::deque<PendingJob> queue{pending(0, 8, 10), pending(1, 64, 10),
                               pending(2, 4, 10)};
  EasyScheduler::PassStats stats;
  sched.schedule(0.0, state, queue, {}, &stats);
  EXPECT_GE(stats.allocate_calls, 3u);
}

TEST(EasyScheduler, EmptyQueueNoDecisions) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const BaselineAllocator baseline;
  const EasyScheduler sched(baseline, 50);
  EXPECT_TRUE(sched.schedule(0.0, state, {}, {}).empty());
}

}  // namespace
}  // namespace jigsaw
