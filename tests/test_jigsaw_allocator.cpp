#include <gtest/gtest.h>

#include "core/conditions.hpp"
#include "core/jigsaw_allocator.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace jigsaw {
namespace {

using testing::must_allocate;

TEST(JigsawAllocator, SingleNodeJob) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  const Allocation a = must_allocate(jigsaw, state, 1, 1);
  EXPECT_EQ(a.allocated_nodes(), 1);
  EXPECT_TRUE(a.leaf_wires.empty());
  EXPECT_TRUE(a.l2_wires.empty());
  EXPECT_TRUE(check_high_utilization(t, a).ok);
}

TEST(JigsawAllocator, ExactNodeCountAlways) {
  const FatTree t(8, 8, 16);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  for (int size : {1, 5, 8, 13, 64, 100, 200}) {
    const Allocation a = must_allocate(jigsaw, state, size, size);
    EXPECT_EQ(a.allocated_nodes(), size);  // no internal fragmentation
    EXPECT_EQ(a.wasted_nodes(), 0);
  }
}

TEST(JigsawAllocator, PrefersSingleSubtree) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  const Allocation a = must_allocate(jigsaw, state, 1, 16);  // exactly a tree
  TreeId tree = t.tree_of_node(a.nodes.front());
  for (const NodeId n : a.nodes) EXPECT_EQ(t.tree_of_node(n), tree);
  EXPECT_TRUE(a.l2_wires.empty());  // two-level allocations use no spines
}

TEST(JigsawAllocator, ThreeLevelWhenSubtreeIsFull) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  const Allocation a = must_allocate(jigsaw, state, 1, 20);  // > one subtree
  EXPECT_FALSE(a.l2_wires.empty());
  const auto report = check_full_bandwidth(t, a);
  EXPECT_TRUE(report.ok) << report.error;
}

TEST(JigsawAllocator, EveryAllocationSatisfiesAllConditions) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  Rng rng(17);
  std::vector<Allocation> live;
  for (JobId job = 0; job < 40; ++job) {
    const int size = 1 + static_cast<int>(rng.below(20));
    const auto alloc = jigsaw.allocate(state, JobRequest{job, size, 0.0});
    if (!alloc.has_value()) {
      // Free something and retry once.
      if (live.empty()) continue;
      state.release(live.back());
      live.pop_back();
      continue;
    }
    state.apply(*alloc);
    const auto fb = check_full_bandwidth(t, *alloc);
    ASSERT_TRUE(fb.ok) << "job " << job << " size " << size << ": "
                       << fb.error;
    const auto hu = check_high_utilization(t, *alloc);
    ASSERT_TRUE(hu.ok) << "job " << job << ": " << hu.error;
    live.push_back(*alloc);
  }
  EXPECT_TRUE(state.check_invariants());
}

TEST(JigsawAllocator, RemainderLeafPrefersPartialLeaves) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  // Leave a 1-node hole on leaf 0, then ask for 4+2: the 2-node remainder
  // should land on the partially-used leaf (3 free) rather than break a
  // pristine one.
  must_allocate(jigsaw, state, 1, 1);
  const Allocation a = must_allocate(jigsaw, state, 2, 6);
  int on_leaf0 = 0;
  for (const NodeId n : a.nodes) {
    if (t.leaf_of_node(n) == 0) ++on_leaf0;
  }
  EXPECT_EQ(on_leaf0, 2);
}

TEST(JigsawAllocator, FillsMachineCompletely) {
  // With whole-subtree jobs the machine packs to 100%.
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  for (JobId job = 0; job < 4; ++job) must_allocate(jigsaw, state, job, 16);
  EXPECT_EQ(state.total_free_nodes(), 0);
  EXPECT_FALSE(jigsaw.allocate(state, JobRequest{99, 1, 0.0}).has_value());
}

TEST(JigsawAllocator, ReusesFreedResources) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  std::vector<Allocation> allocs;
  for (JobId job = 0; job < 4; ++job) {
    allocs.push_back(must_allocate(jigsaw, state, job, 16));
  }
  state.release(allocs[1]);
  const Allocation again = must_allocate(jigsaw, state, 10, 16);
  EXPECT_EQ(state.total_free_nodes(), 0);
  EXPECT_TRUE(state.check_invariants());
  (void)again;
}

TEST(JigsawAllocator, WholeMachineJob) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  const Allocation a = must_allocate(jigsaw, state, 1, t.total_nodes());
  EXPECT_EQ(state.total_free_nodes(), 0);
  EXPECT_TRUE(check_full_bandwidth(t, a).ok);
}

TEST(JigsawAllocator, OversizeAndInvalidRequests) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  EXPECT_FALSE(jigsaw.allocate(state, JobRequest{1, 0, 0.0}).has_value());
  EXPECT_FALSE(
      jigsaw.allocate(state, JobRequest{1, t.total_nodes() + 1, 0.0})
          .has_value());
}

TEST(JigsawAllocator, SpreadsJobOverPartialLeavesWhereTaCannot) {
  // The §6.1 observation: a small job that does not fit on any single leaf
  // can still be placed by Jigsaw across several partially-free leaves.
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  // Occupy 2 nodes of every leaf in tree 0.
  for (int leaf = 0; leaf < 4; ++leaf) {
    Allocation filler;
    filler.job = 100 + leaf;
    filler.requested_nodes = 2;
    filler.nodes = {t.node_id(t.leaf_id(0, leaf), 0),
                    t.node_id(t.leaf_id(0, leaf), 1)};
    state.apply(filler);
  }
  // Fill all other trees completely.
  for (TreeId tree = 1; tree < 4; ++tree) {
    must_allocate(jigsaw, state, 200 + tree, 16);
  }
  // 4 free nodes exist only as 2+2 on tree 0's leaves.
  const auto alloc = jigsaw.allocate(state, JobRequest{1, 4, 0.0});
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(alloc->allocated_nodes(), 4);
}

TEST(JigsawAllocator, ReportsSearchStats) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  SearchStats stats;
  const auto a = jigsaw.allocate(state, JobRequest{1, 20, 0.0}, &stats);
  ASSERT_TRUE(a.has_value());
  EXPECT_GT(stats.steps, 0u);
  EXPECT_FALSE(stats.budget_exhausted);
}

}  // namespace
}  // namespace jigsaw
