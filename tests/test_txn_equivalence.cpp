// Equivalence guard for the zero-copy scheduling rewrite.
//
// The transactional hot path (undo journal + incremental capacity
// indices) must be behavior-preserving, not just invariant-preserving:
// with a fixed seed, every scheme makes the same decisions as the
// copy-based implementation it replaced. The constants below were dumped
// with %.17g from the pre-rewrite library (and re-verified against the
// rewritten one) on Synth-16 at 800 jobs; EXPECT_DOUBLE_EQ demands the
// exact same bits back, and search_steps/allocate_calls pin the
// decision sequence, not just the aggregate outcome.

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>

#include "core/baseline.hpp"
#include "core/jigsaw_allocator.hpp"
#include "core/laas.hpp"
#include "core/lc.hpp"
#include "core/ta.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"

namespace jigsaw {
namespace {

struct Golden {
  const Allocator& alloc;
  double steady_utilization;
  double makespan;
  double mean_turnaround_all;
  std::uint64_t search_steps;
  std::uint64_t allocate_calls;
};

TEST(TxnEquivalence, Figure6Synth16GoldenMetrics) {
  Trace trace = named_synthetic("Synth-16", 800);
  Rng rng(0xBADC0FFEEULL);
  assign_bandwidth_classes(trace, rng);
  const FatTree topo = FatTree::from_radix(16);

  const BaselineAllocator baseline;
  const LeastConstrainedAllocator lcs(true);
  const JigsawAllocator jigsaw;
  const LaasAllocator laas;
  const TaAllocator ta;
  const Golden goldens[] = {
      {baseline, 0.9884978419357644, 21581.536623877728, 10029.040864509567,
       1205784, 43246},
      {lcs, 0.95529866820414855, 22191.466093482868, 9945.6543904451664,
       597278, 43282},
      {jigsaw, 0.95399724473007541, 22448.816490811365, 9751.5165563178252,
       176526, 43599},
      {laas, 0.91342250553047133, 23258.598207377014, 10224.410517353494,
       139550, 43601},
      {ta, 0.86142643856618784, 24606.814746996362, 11018.747574776913,
       989098, 43439},
  };
  for (const Golden& g : goldens) {
    SCOPED_TRACE(g.alloc.name());
    const SimMetrics m = simulate(topo, g.alloc, trace, SimConfig{});
    EXPECT_DOUBLE_EQ(m.steady_utilization, g.steady_utilization);
    EXPECT_DOUBLE_EQ(m.makespan, g.makespan);
    EXPECT_DOUBLE_EQ(m.mean_turnaround_all, g.mean_turnaround_all);
    EXPECT_EQ(m.search_steps, g.search_steps);
    EXPECT_EQ(m.allocate_calls, g.allocate_calls);
  }
}

TEST(TxnEquivalence, SchedulePassLeavesStateUntouched) {
  // A scheduling pass probes dozens of speculative placements through
  // the undo journal; whatever it decides, the state it hands back must
  // be bit-identical to a fresh rebuild of the pre-pass state — down to
  // the revision counter, so the inter-pass cache stays valid.
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  const EasyScheduler sched(jigsaw, 50);

  std::vector<RunningJob> running;
  for (TreeId tree = 0; tree < 3; ++tree) {
    auto a = jigsaw.allocate(state, JobRequest{tree, 14, 0.0});
    ASSERT_TRUE(a.has_value());
    state.apply(*a);
    running.push_back(RunningJob{tree, 40.0 + 10.0 * tree, *a});
  }
  const ClusterState before = state;
  const std::uint64_t revision = state.revision();

  // Head too big to start now, several backfill candidates (some fit,
  // some do not) — a pass with real probe traffic on every branch.
  std::deque<PendingJob> queue{PendingJob{10, 40, 0.0, 100.0},
                               PendingJob{11, 8, 1.0, 30.0},
                               PendingJob{12, 16, 0.0, 500.0},
                               PendingJob{13, 4, 2.0, 10.0}};
  const auto decisions = sched.schedule(0.0, state, queue, running);
  EXPECT_FALSE(decisions.empty());

  EXPECT_EQ(state.revision(), revision);
  EXPECT_TRUE(state.check_invariants());
  EXPECT_EQ(state.total_free_nodes(), before.total_free_nodes());
  for (LeafId l = 0; l < t.total_leaves(); ++l) {
    EXPECT_EQ(state.free_nodes(l), before.free_nodes(l)) << "leaf " << l;
    EXPECT_EQ(state.free_leaf_up(l), before.free_leaf_up(l)) << "leaf " << l;
  }
  for (TreeId tr = 0; tr < t.trees(); ++tr) {
    EXPECT_EQ(state.fully_free_leaf_mask(tr), before.fully_free_leaf_mask(tr));
    EXPECT_EQ(state.tree_free_nodes(tr), before.tree_free_nodes(tr));
    for (int c = 0; c <= t.nodes_per_leaf(); ++c) {
      EXPECT_EQ(state.leaves_with_free_count(tr, c),
                before.leaves_with_free_count(tr, c));
    }
    for (int i = 0; i < t.l2_per_tree(); ++i) {
      EXPECT_EQ(state.free_l2_up(tr, i), before.free_l2_up(tr, i));
    }
  }
}

}  // namespace
}  // namespace jigsaw
