// Snapshot subsystem: file framing, engine state round-trips, O(tail)
// recovery after WAL compaction, and the corruption-fallback chain
// (newest snapshot lost -> previous generation + rotated segment; both
// generations lost -> hard error; uncompacted history -> full replay).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/jigsaw_allocator.hpp"
#include "service/daemon.hpp"
#include "service/protocol.hpp"
#include "service/snapshot.hpp"
#include "service/wal.hpp"
#include "sim/engine.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace jigsaw::service {
namespace {

bool is_ok(const std::string& reply) {
  return reply.rfind("{\"ok\":true", 0) == 0;
}

bool has_error(const std::string& reply, const char* code) {
  return reply.find("\"ok\":false") != std::string::npos &&
         reply.find(std::string("\"error\":\"") + code + "\"") !=
             std::string::npos;
}

std::string metrics_text(const std::string& drain_reply) {
  const std::size_t key = drain_reply.find("\"metrics\":");
  if (key == std::string::npos) return {};
  const std::size_t open = drain_reply.find('{', key);
  const std::size_t close = drain_reply.find('}', open);
  if (open == std::string::npos || close == std::string::npos) return {};
  return drain_reply.substr(open, close - open + 1);
}

std::string scrub_wall_fields(std::string text) {
  for (const char* key :
       {"\"sched_wall_seconds\":", "\"mean_sched_time_per_job\":"}) {
    const std::size_t at = text.find(key);
    if (at == std::string::npos) continue;
    std::size_t end = text.find(',', at);
    if (end == std::string::npos) end = text.find('}', at);
    text.erase(at, end - at + 1);
  }
  return text;
}

/// Deterministic submit lines for the 16-node radix-4 tree: a mix of
/// sizes, runtimes, and spaced arrivals so drains exercise queueing and
/// backfill, not just a single pass.
std::vector<std::string> workload(std::size_t count) {
  Rng rng(0x5EEDC0DEULL);
  std::vector<std::string> lines;
  double arrival = 0.0;
  for (std::size_t k = 0; k < count; ++k) {
    arrival += rng.uniform(0.0, 40.0);
    const int nodes = 1 + static_cast<int>(rng.uniform(0.0, 6.0));
    const double runtime = rng.uniform(30.0, 900.0);
    std::string line = "{\"op\":\"submit\",\"id\":" + std::to_string(k) +
                       ",\"nodes\":" + std::to_string(nodes) +
                       ",\"runtime\":";
    append_double(line, runtime);
    line += ",\"arrival\":";
    append_double(line, arrival);
    line += "}";
    lines.push_back(std::move(line));
  }
  return lines;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// File framing.
// ---------------------------------------------------------------------------

TEST(SnapshotFile, RoundTripPreservesEveryField) {
  const std::string path =
      ::testing::TempDir() + "snap_roundtrip_" + std::to_string(::getpid());
  std::remove(path.c_str());

  SnapshotData data;
  data.epoch = 7;
  data.clock = "virtual";
  data.next_job_id = 42;
  data.next_corr = 9;
  data.corr = {{3, 1}, {5, 2}, {41, 8}};
  data.grants = 4;
  data.releases = 3;
  data.wall_target = 123.25;
  data.drained = true;
  // Arbitrary binary payload, embedded NULs included: the frame must be
  // 8-bit clean because engine blobs are raw binio bytes.
  data.engine_blob = std::string("\x00\xff\x7f engine\n\x01", 11);

  std::string error;
  ASSERT_TRUE(write_snapshot_file(path, data, &error)) << error;

  SnapshotData out;
  EXPECT_EQ(read_snapshot_file(path, &out, &error), SnapshotReadStatus::kOk)
      << error;
  EXPECT_EQ(out.epoch, 7u);
  EXPECT_EQ(out.clock, "virtual");
  EXPECT_EQ(out.next_job_id, 42);
  EXPECT_EQ(out.next_corr, 9u);
  EXPECT_EQ(out.corr, data.corr);
  EXPECT_EQ(out.grants, 4u);
  EXPECT_EQ(out.releases, 3u);
  EXPECT_EQ(out.wall_target, 123.25);
  EXPECT_TRUE(out.drained);
  EXPECT_EQ(out.engine_blob, data.engine_blob);

  // The tmp staging file must not linger after a successful rename.
  EXPECT_EQ(read_snapshot_file(path + ".tmp", &out, &error),
            SnapshotReadStatus::kMissing);
  std::remove(path.c_str());
}

TEST(SnapshotFile, MissingAndCorruptAreDistinguished) {
  const std::string path =
      ::testing::TempDir() + "snap_corrupt_" + std::to_string(::getpid());
  std::remove(path.c_str());

  SnapshotData out;
  std::string error = "unset";
  EXPECT_EQ(read_snapshot_file(path, &out, &error),
            SnapshotReadStatus::kMissing);
  EXPECT_TRUE(error.empty());  // missing is not an error

  SnapshotData data;
  data.epoch = 1;
  data.clock = "virtual";
  data.engine_blob = "payload bytes";
  ASSERT_TRUE(write_snapshot_file(path, data, &error)) << error;
  const std::string pristine = read_file(path);
  ASSERT_FALSE(pristine.empty());

  // A flipped payload byte fails the checksum.
  std::string damaged = pristine;
  damaged[damaged.size() / 2] =
      static_cast<char>(damaged[damaged.size() / 2] ^ 0x40);
  write_file(path, damaged);
  error.clear();
  EXPECT_EQ(read_snapshot_file(path, &out, &error),
            SnapshotReadStatus::kCorrupt);
  EXPECT_FALSE(error.empty());

  // Truncation inside the header is corrupt too, not missing.
  write_file(path, pristine.substr(0, 10));
  EXPECT_EQ(read_snapshot_file(path, &out, &error),
            SnapshotReadStatus::kCorrupt);

  // Wrong magic: some other file at the path.
  write_file(path, "definitely not a snapshot file, long enough to read");
  EXPECT_EQ(read_snapshot_file(path, &out, &error),
            SnapshotReadStatus::kCorrupt);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Engine state round-trip: a restored engine continues the run with
// %.17g-identical metrics, and re-serialization is byte-deterministic.
// ---------------------------------------------------------------------------

TEST(SnapshotEngine, MidRunSerializeRestoresBitIdentical) {
  const FatTree topo = FatTree::from_radix(4);
  const SimConfig config;
  JigsawAllocator allocator;
  const std::vector<std::string> lines = workload(40);

  // Drive an engine halfway: submit everything, then process half the
  // event stream so queues, running set, and accumulators are all
  // non-trivial at capture time.
  SimEngine engine(topo, allocator, config);
  {
    Rng rng(0x5EEDC0DEULL);
    double arrival = 0.0;
    for (std::size_t k = 0; k < 40; ++k) {
      arrival += rng.uniform(0.0, 40.0);
      Job job;
      job.id = static_cast<JobId>(k);
      job.nodes = 1 + static_cast<int>(rng.uniform(0.0, 6.0));
      job.runtime = rng.uniform(30.0, 900.0);
      job.arrival = arrival;
      engine.submit(job);
    }
  }
  for (int k = 0; k < 30 && !engine.idle(); ++k) engine.step();
  ASSERT_FALSE(engine.idle());  // capture genuinely mid-run

  std::string blob;
  std::string error;
  ASSERT_TRUE(engine.serialize(&blob, &error)) << error;

  SimEngine restored(topo, allocator, config);
  ASSERT_TRUE(restored.deserialize(blob, &error)) << error;

  // Byte-deterministic: re-serializing the restored engine reproduces
  // the blob exactly (unordered state must be written in a pinned order).
  std::string blob2;
  ASSERT_TRUE(restored.serialize(&blob2, &error)) << error;
  EXPECT_EQ(blob, blob2);

  engine.run();
  restored.run();
  EXPECT_EQ(scrub_wall_fields(metrics_json(restored.finish())),
            scrub_wall_fields(metrics_json(engine.finish())));
}

TEST(SnapshotEngine, DeserializeRejectsDamagedBlob) {
  const FatTree topo = FatTree::from_radix(4);
  const SimConfig config;
  JigsawAllocator allocator;
  SimEngine engine(topo, allocator, config);
  Job job;
  job.id = 0;
  job.nodes = 2;
  job.runtime = 100.0;
  job.arrival = 0.0;
  engine.submit(job);

  std::string blob;
  std::string error;
  ASSERT_TRUE(engine.serialize(&blob, &error)) << error;

  SimEngine victim(topo, allocator, config);
  EXPECT_FALSE(victim.deserialize(blob.substr(0, blob.size() / 2), &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Daemon recovery through snapshots.
// ---------------------------------------------------------------------------

class SnapshotRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wal_path_ =
        ::testing::TempDir() + "snapshot_recovery_" +
        std::to_string(::getpid()) + "_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ".wal";
    cleanup();
  }
  void TearDown() override { cleanup(); }

  void cleanup() {
    std::remove(wal_path_.c_str());
    std::remove((wal_path_ + ".prev").c_str());
    for (std::uint64_t e = 1; e <= 4; ++e) {
      std::remove(snapshot_path(wal_path_, e).c_str());
      std::remove((snapshot_path(wal_path_, e) + ".tmp").c_str());
    }
  }

  /// Uninterrupted no-WAL reference: replay `lines` (plus optional
  /// cancels), drain, return the scrubbed metrics object text.
  std::string reference_metrics(const FatTree& topo,
                                const JigsawAllocator& allocator,
                                const SimConfig& config,
                                const std::vector<std::string>& lines,
                                const std::vector<JobId>& cancels) {
    ServiceDaemon daemon(topo, allocator, config, DaemonOptions{});
    std::string error;
    EXPECT_TRUE(daemon.init(&error)) << error;
    for (const std::string& line : lines) {
      EXPECT_TRUE(is_ok(daemon.handle_line(line)));
    }
    for (const JobId id : cancels) {
      EXPECT_TRUE(is_ok(daemon.handle_line(
          "{\"op\":\"cancel\",\"job\":" + std::to_string(id) + "}")));
    }
    return scrub_wall_fields(
        metrics_text(daemon.handle_line("{\"op\":\"drain\"}")));
  }

  std::string wal_path_;
};

TEST_F(SnapshotRecoveryTest, SnapshotOpWithoutWalIsBadState) {
  const FatTree topo = FatTree::from_radix(4);
  const SimConfig config;
  JigsawAllocator allocator;
  ServiceDaemon daemon(topo, allocator, config, DaemonOptions{});
  std::string error;
  ASSERT_TRUE(daemon.init(&error)) << error;
  EXPECT_TRUE(
      has_error(daemon.handle_line("{\"op\":\"snapshot\"}"), "bad_state"));
}

// The headline property: after a compaction, recovery replays only the
// records behind the snapshot marker (O(tail), not O(history)) and still
// lands on metrics bit-identical to an uninterrupted run — even when the
// crash tore the last WAL frame mid-write.
TEST_F(SnapshotRecoveryTest, TailReplayAfterCompaction) {
  const FatTree topo = FatTree::from_radix(4);
  const SimConfig config;
  JigsawAllocator allocator;
  const std::vector<std::string> lines = workload(30);
  const std::string reference =
      reference_metrics(topo, allocator, config, lines, {21});

  DaemonOptions wal_options;
  wal_options.wal_path = wal_path_;
  wal_options.sync = SyncPolicy::kAlways;
  {
    ServiceDaemon daemon(topo, allocator, config, wal_options);
    std::string error;
    ASSERT_TRUE(daemon.init(&error)) << error;
    for (std::size_t k = 0; k < 20; ++k) {
      ASSERT_TRUE(is_ok(daemon.handle_line(lines[k])));
    }
    const std::string snap = daemon.handle_line("{\"op\":\"snapshot\"}");
    ASSERT_TRUE(is_ok(snap)) << snap;
    EXPECT_NE(snap.find("\"epoch\":1"), std::string::npos) << snap;
    EXPECT_EQ(daemon.snapshots_taken(), 1u);
    for (std::size_t k = 20; k < 30; ++k) {
      ASSERT_TRUE(is_ok(daemon.handle_line(lines[k])));
    }
    ASSERT_TRUE(
        is_ok(daemon.handle_line("{\"op\":\"cancel\",\"job\":21}")));
    ASSERT_TRUE(is_ok(daemon.handle_line("{\"op\":\"drain\"}")));
  }  // crash

  // Tear the last frame of the current segment, as a kill -9 mid-append
  // would: recovery must drop the torn bytes and still audit clean.
  const std::string segment = read_file(wal_path_);
  ASSERT_GT(segment.size(), 8u);
  write_file(wal_path_, segment.substr(0, segment.size() - 3));

  DaemonOptions recover_options = wal_options;
  recover_options.recover = true;
  ServiceDaemon daemon(topo, allocator, config, recover_options);
  std::string error;
  ASSERT_TRUE(daemon.init(&error)) << error;
  const RecoveryReport& report = daemon.recovery();
  EXPECT_TRUE(report.performed);
  EXPECT_TRUE(report.audit_ok);
  EXPECT_TRUE(report.used_snapshot);
  EXPECT_FALSE(report.snapshot_fallback);
  EXPECT_EQ(report.snapshot_epoch, 1u);
  // Only the post-snapshot inputs replay: 10 submits + cancel + drain.
  EXPECT_EQ(report.inputs_replayed, 12u);
  EXPECT_LT(report.tail_records, report.records);
  EXPECT_GT(report.dropped_bytes, 0u);
  EXPECT_TRUE(daemon.drained());
  EXPECT_EQ(scrub_wall_fields(
                metrics_text(daemon.handle_line("{\"op\":\"drain\"}"))),
            reference);
}

// Property test over the fallback chain: whatever seeded damage the
// newest snapshot takes — truncation, a bit flip anywhere in the file,
// or deletion — recovery falls back to the previous generation (snapshot
// epoch-1 plus the rotated-out .prev segment) and the drained metrics
// never change.
TEST_F(SnapshotRecoveryTest, CorruptNewestSnapshotFallsBack) {
  const FatTree topo = FatTree::from_radix(4);
  const SimConfig config;
  JigsawAllocator allocator;
  const std::vector<std::string> lines = workload(26);
  const std::string reference =
      reference_metrics(topo, allocator, config, lines, {14});

  DaemonOptions wal_options;
  wal_options.wal_path = wal_path_;
  wal_options.sync = SyncPolicy::kAlways;
  {
    ServiceDaemon daemon(topo, allocator, config, wal_options);
    std::string error;
    ASSERT_TRUE(daemon.init(&error)) << error;
    for (std::size_t k = 0; k < 12; ++k) {
      ASSERT_TRUE(is_ok(daemon.handle_line(lines[k])));
    }
    ASSERT_TRUE(is_ok(daemon.handle_line("{\"op\":\"snapshot\"}")));
    for (std::size_t k = 12; k < 20; ++k) {
      ASSERT_TRUE(is_ok(daemon.handle_line(lines[k])));
    }
    ASSERT_TRUE(is_ok(daemon.handle_line("{\"op\":\"snapshot\"}")));
    for (std::size_t k = 20; k < 26; ++k) {
      ASSERT_TRUE(is_ok(daemon.handle_line(lines[k])));
    }
    ASSERT_TRUE(
        is_ok(daemon.handle_line("{\"op\":\"cancel\",\"job\":14}")));
    ASSERT_TRUE(is_ok(daemon.handle_line("{\"op\":\"drain\"}")));
  }  // crash with two snapshot generations on disk

  const std::string snap2_path = snapshot_path(wal_path_, 2);
  const std::string pristine_wal = read_file(wal_path_);
  const std::string pristine_prev = read_file(wal_path_ + ".prev");
  const std::string pristine_snap1 = read_file(snapshot_path(wal_path_, 1));
  const std::string pristine_snap2 = read_file(snap2_path);
  ASSERT_FALSE(pristine_prev.empty());
  ASSERT_FALSE(pristine_snap1.empty());
  ASSERT_FALSE(pristine_snap2.empty());

  DaemonOptions recover_options = wal_options;
  recover_options.recover = true;
  Rng rng(0xFA11BACCULL);
  for (int trial = 0; trial < 200; ++trial) {
    write_file(wal_path_, pristine_wal);
    write_file(wal_path_ + ".prev", pristine_prev);
    write_file(snapshot_path(wal_path_, 1), pristine_snap1);
    switch (trial % 3) {
      case 0: {  // truncate (strictly shorter, possibly to zero)
        const std::size_t cut = static_cast<std::size_t>(
            rng.uniform(0.0, static_cast<double>(pristine_snap2.size())));
        write_file(snap2_path, pristine_snap2.substr(0, cut));
        break;
      }
      case 1: {  // flip one bit anywhere
        std::string damaged = pristine_snap2;
        const std::size_t at = static_cast<std::size_t>(rng.uniform(
            0.0, static_cast<double>(damaged.size()) - 0.001));
        const int bit = static_cast<int>(rng.uniform(0.0, 7.999));
        damaged[at] = static_cast<char>(damaged[at] ^ (1 << bit));
        write_file(snap2_path, damaged);
        break;
      }
      default:  // the file vanished entirely
        std::remove(snap2_path.c_str());
        break;
    }

    ServiceDaemon daemon(topo, allocator, config, recover_options);
    std::string error;
    ASSERT_TRUE(daemon.init(&error)) << "trial " << trial << ": " << error;
    const RecoveryReport& report = daemon.recovery();
    EXPECT_TRUE(report.audit_ok) << "trial " << trial;
    EXPECT_TRUE(report.snapshot_fallback) << "trial " << trial;
    EXPECT_TRUE(report.used_snapshot) << "trial " << trial;
    EXPECT_EQ(report.snapshot_epoch, 1u) << "trial " << trial;
    ASSERT_EQ(scrub_wall_fields(
                  metrics_text(daemon.handle_line("{\"op\":\"drain\"}"))),
              reference)
        << "trial " << trial;
  }
}

// Single compaction, so .prev holds the full uncompacted history: losing
// the only snapshot degrades to a full replay of both segments — slower,
// never wrong.
TEST_F(SnapshotRecoveryTest, LostOnlySnapshotReplaysFullHistory) {
  const FatTree topo = FatTree::from_radix(4);
  const SimConfig config;
  JigsawAllocator allocator;
  const std::vector<std::string> lines = workload(18);
  const std::string reference =
      reference_metrics(topo, allocator, config, lines, {});

  DaemonOptions wal_options;
  wal_options.wal_path = wal_path_;
  wal_options.sync = SyncPolicy::kAlways;
  {
    ServiceDaemon daemon(topo, allocator, config, wal_options);
    std::string error;
    ASSERT_TRUE(daemon.init(&error)) << error;
    for (std::size_t k = 0; k < 12; ++k) {
      ASSERT_TRUE(is_ok(daemon.handle_line(lines[k])));
    }
    ASSERT_TRUE(is_ok(daemon.handle_line("{\"op\":\"snapshot\"}")));
    for (std::size_t k = 12; k < 18; ++k) {
      ASSERT_TRUE(is_ok(daemon.handle_line(lines[k])));
    }
    ASSERT_TRUE(is_ok(daemon.handle_line("{\"op\":\"drain\"}")));
  }
  std::remove(snapshot_path(wal_path_, 1).c_str());

  DaemonOptions recover_options = wal_options;
  recover_options.recover = true;
  ServiceDaemon daemon(topo, allocator, config, recover_options);
  std::string error;
  ASSERT_TRUE(daemon.init(&error)) << error;
  const RecoveryReport& report = daemon.recovery();
  EXPECT_TRUE(report.audit_ok);
  EXPECT_TRUE(report.snapshot_fallback);
  EXPECT_FALSE(report.used_snapshot);  // scratch replay of both segments
  EXPECT_EQ(scrub_wall_fields(
                metrics_text(daemon.handle_line("{\"op\":\"drain\"}"))),
            reference);
}

// Both retained generations unusable: recovery must refuse loudly, not
// serve from a partial state.
TEST_F(SnapshotRecoveryTest, BothGenerationsLostIsAHardError) {
  const FatTree topo = FatTree::from_radix(4);
  const SimConfig config;
  JigsawAllocator allocator;
  const std::vector<std::string> lines = workload(20);

  DaemonOptions wal_options;
  wal_options.wal_path = wal_path_;
  wal_options.sync = SyncPolicy::kAlways;
  {
    ServiceDaemon daemon(topo, allocator, config, wal_options);
    std::string error;
    ASSERT_TRUE(daemon.init(&error)) << error;
    for (std::size_t k = 0; k < 8; ++k) {
      ASSERT_TRUE(is_ok(daemon.handle_line(lines[k])));
    }
    ASSERT_TRUE(is_ok(daemon.handle_line("{\"op\":\"snapshot\"}")));
    for (std::size_t k = 8; k < 14; ++k) {
      ASSERT_TRUE(is_ok(daemon.handle_line(lines[k])));
    }
    ASSERT_TRUE(is_ok(daemon.handle_line("{\"op\":\"snapshot\"}")));
    for (std::size_t k = 14; k < 20; ++k) {
      ASSERT_TRUE(is_ok(daemon.handle_line(lines[k])));
    }
  }
  std::remove(snapshot_path(wal_path_, 1).c_str());
  std::remove(snapshot_path(wal_path_, 2).c_str());

  DaemonOptions recover_options = wal_options;
  recover_options.recover = true;
  ServiceDaemon daemon(topo, allocator, config, recover_options);
  std::string error;
  EXPECT_FALSE(daemon.init(&error));
  EXPECT_NE(error.find("both unusable"), std::string::npos) << error;
}

// Automatic cadence: --snapshot-every compacts on its own and retires
// epoch-2 snapshots (two-generation retention), and recovery restores
// the newest epoch.
TEST_F(SnapshotRecoveryTest, SnapshotEveryCompactsAndRetires) {
  const FatTree topo = FatTree::from_radix(4);
  const SimConfig config;
  JigsawAllocator allocator;
  const std::vector<std::string> lines = workload(25);
  const std::string reference =
      reference_metrics(topo, allocator, config, lines, {});

  DaemonOptions wal_options;
  wal_options.wal_path = wal_path_;
  wal_options.sync = SyncPolicy::kAlways;
  wal_options.snapshot_every = 8;
  {
    ServiceDaemon daemon(topo, allocator, config, wal_options);
    std::string error;
    ASSERT_TRUE(daemon.init(&error)) << error;
    for (const std::string& line : lines) {
      ASSERT_TRUE(is_ok(daemon.handle_line(line)));
    }
    // 25 accepted inputs at a cadence of 8 -> epochs 1, 2, 3.
    EXPECT_EQ(daemon.snapshots_taken(), 3u);
    EXPECT_EQ(daemon.snapshot_epoch(), 3u);
    ASSERT_TRUE(is_ok(daemon.handle_line("{\"op\":\"drain\"}")));
  }
  SnapshotData probe;
  std::string error;
  EXPECT_EQ(read_snapshot_file(snapshot_path(wal_path_, 1), &probe, &error),
            SnapshotReadStatus::kMissing);  // retired by epoch 3
  EXPECT_EQ(read_snapshot_file(snapshot_path(wal_path_, 3), &probe, &error),
            SnapshotReadStatus::kOk);

  DaemonOptions recover_options = wal_options;
  recover_options.recover = true;
  ServiceDaemon daemon(topo, allocator, config, recover_options);
  ASSERT_TRUE(daemon.init(&error)) << error;
  EXPECT_TRUE(daemon.recovery().used_snapshot);
  EXPECT_EQ(daemon.recovery().snapshot_epoch, 3u);
  EXPECT_EQ(scrub_wall_fields(
                metrics_text(daemon.handle_line("{\"op\":\"drain\"}"))),
            reference);
}

}  // namespace
}  // namespace jigsaw::service
