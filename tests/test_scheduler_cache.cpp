// The EasyScheduler inter-pass cache and the SJBF backfill order.

#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/jigsaw_allocator.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/observer.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"

namespace jigsaw {
namespace {

PendingJob pending(JobId id, int nodes, double runtime) {
  return PendingJob{id, nodes, 0.0, runtime};
}

TEST(SchedulerCache, CachedPassMatchesUncachedDecisions) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const BaselineAllocator baseline;
  const EasyScheduler sched(baseline, 50);

  // Fill the machine so the head blocks, then compare a cached repeat
  // pass (arrival-only event) against a fresh scheduler's pass.
  std::vector<RunningJob> running;
  auto big = baseline.allocate(state, JobRequest{0, 62, 0.0});
  ASSERT_TRUE(big.has_value());
  state.apply(*big);
  running.push_back(RunningJob{0, 100.0, *big});

  std::deque<PendingJob> queue{pending(1, 60, 50), pending(2, 2, 10)};
  EasyScheduler::Cache cache;
  const auto first = sched.schedule(0.0, state, queue, running, nullptr,
                                    &cache);
  // Job 2 backfills (fits the 2 free nodes, finishes before t=100).
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(queue[first[0].pending_index].id, 2);

  // Apply it; a new arrival shows up; the cache must be invalidated by
  // the revision change and the pass must still behave like a fresh one.
  state.apply(first[0].allocation);
  running.push_back(RunningJob{2, 10.0, first[0].allocation});
  queue = {pending(1, 60, 50), pending(3, 2, 5)};
  EasyScheduler::PassStats cached_stats;
  const auto second = sched.schedule(1.0, state, queue, running,
                                     &cached_stats, &cache);
  const auto fresh = sched.schedule(1.0, state, queue, running);
  ASSERT_EQ(second.size(), fresh.size());
  for (std::size_t k = 0; k < second.size(); ++k) {
    EXPECT_EQ(second[k].pending_index, fresh[k].pending_index);
  }
}

TEST(SchedulerCache, ArrivalOnlyPassSkipsHeadRetry) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const BaselineAllocator baseline;
  const EasyScheduler sched(baseline, 50);
  std::vector<RunningJob> running;
  auto big = baseline.allocate(state, JobRequest{0, 64, 0.0});
  ASSERT_TRUE(big.has_value());
  state.apply(*big);
  running.push_back(RunningJob{0, 100.0, *big});

  std::deque<PendingJob> queue{pending(1, 10, 50)};
  EasyScheduler::Cache cache;
  EasyScheduler::PassStats first_stats;
  ASSERT_TRUE(sched.schedule(0.0, state, queue, running, &first_stats, &cache)
                  .empty());
  EXPECT_GT(first_stats.allocate_calls, 0u);

  // Same state (no apply), new arrival appended: the head retry and
  // shadow search are skipped; only the new candidate is probed.
  queue.push_back(pending(2, 64, 1));
  EasyScheduler::PassStats second_stats;
  ASSERT_TRUE(
      sched.schedule(1.0, state, queue, running, &second_stats, &cache)
          .empty());
  EXPECT_LE(second_stats.allocate_calls, 1u);
}

TEST(SchedulerCache, ExaminedPrefixPersistsAcrossCacheHitPasses) {
  // Regression: a cache-hit pass that starts zero jobs must persist its
  // advanced examined prefix, so a stream of arrival-only events probes
  // each backfill candidate exactly once. The sched.cache_hits counter
  // pins the hit passes; allocate_calls pins the probe count.
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const BaselineAllocator baseline;
  const EasyScheduler sched(baseline, 50);
  obs::MetricsRegistry reg;
  obs::ObsContext ctx;
  ctx.metrics = &reg;

  // Machine completely full until t=100: the head blocks and every
  // backfill probe fails, so no pass starts anything.
  std::vector<RunningJob> running;
  auto big = baseline.allocate(state, JobRequest{0, 64, 0.0});
  ASSERT_TRUE(big.has_value());
  state.apply(*big);
  running.push_back(RunningJob{0, 100.0, *big});

  std::deque<PendingJob> queue{pending(1, 10, 50)};
  EasyScheduler::Cache cache;
  ASSERT_TRUE(sched.schedule(0.0, state, queue, running, nullptr, &cache,
                             &ctx)
                  .empty());
  EXPECT_EQ(reg.counter("sched.cache_hits").value(), 0u);

  // Two consecutive arrival-only events. Each cache-hit pass must probe
  // only its own new candidate — including the third pass, whose
  // examined prefix was advanced by the *cache-hit* second pass.
  for (std::uint64_t arrival = 0; arrival < 2; ++arrival) {
    queue.push_back(pending(static_cast<JobId>(2 + arrival), 4, 200));
    EasyScheduler::PassStats stats;
    ASSERT_TRUE(sched.schedule(1.0 + static_cast<double>(arrival), state,
                               queue, running, &stats, &cache, &ctx)
                    .empty());
    EXPECT_EQ(reg.counter("sched.cache_hits").value(), arrival + 1);
    EXPECT_EQ(stats.allocate_calls, 1u) << "pass " << arrival;
  }
}

TEST(SchedulerCache, SimulationIdenticalAcrossRepeats) {
  // End-to-end determinism with the cache engaged (the simulator always
  // passes one): identical metrics run-to-run, and sane vs a no-backfill
  // run as a sanity delta.
  const FatTree t = FatTree::from_radix(8);
  SyntheticParams params;
  params.jobs = 300;
  params.mean_size = 4.0;
  params.seed = 99;
  const Trace trace = synthetic_trace(params);
  const JigsawAllocator jigsaw;
  const SimMetrics a = simulate(t, jigsaw, trace, SimConfig{});
  const SimMetrics b = simulate(t, jigsaw, trace, SimConfig{});
  EXPECT_DOUBLE_EQ(a.steady_utilization, b.steady_utilization);
  EXPECT_DOUBLE_EQ(a.mean_turnaround_all, b.mean_turnaround_all);
}

TEST(BackfillOrder, ShortestFirstPrefersShortJobs) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const BaselineAllocator baseline;
  const EasyScheduler fifo(baseline, 50, BackfillOrder::kFifo);
  const EasyScheduler sjbf(baseline, 50, BackfillOrder::kShortestFirst);

  // 62 nodes busy; head blocked; two 2-node candidates compete for the
  // same 2 free nodes: FIFO starts the earlier (long) one, SJBF the
  // shorter one.
  std::vector<RunningJob> running;
  auto big = baseline.allocate(state, JobRequest{0, 62, 0.0});
  ASSERT_TRUE(big.has_value());
  state.apply(*big);
  running.push_back(RunningJob{0, 100.0, *big});
  std::deque<PendingJob> queue{pending(1, 64, 50), pending(2, 2, 90),
                               pending(3, 2, 5)};

  const auto fifo_decisions = fifo.schedule(0.0, state, queue, running);
  ASSERT_EQ(fifo_decisions.size(), 1u);
  EXPECT_EQ(queue[fifo_decisions[0].pending_index].id, 2);

  const auto sjbf_decisions = sjbf.schedule(0.0, state, queue, running);
  ASSERT_EQ(sjbf_decisions.size(), 1u);
  EXPECT_EQ(queue[sjbf_decisions[0].pending_index].id, 3);
}

TEST(BackfillOrder, SjbfStillRespectsReservation) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  const EasyScheduler sjbf(jigsaw, 50, BackfillOrder::kShortestFirst);
  std::vector<RunningJob> running;
  for (TreeId tree = 0; tree < 3; ++tree) {
    auto a = jigsaw.allocate(state, JobRequest{tree, 16, 0.0});
    ASSERT_TRUE(a.has_value());
    state.apply(*a);
    running.push_back(RunningJob{tree, 50.0, *a});
  }
  // Head needs 32 (2 subtrees, shadow at 50); a short 16-node job can
  // take the free subtree only because it finishes by the shadow time; a
  // barely-longer one that overruns it must wait.
  std::deque<PendingJob> queue{pending(10, 32, 100), pending(11, 16, 60),
                               pending(12, 16, 10)};
  const auto decisions = sjbf.schedule(0.0, state, queue, running);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(queue[decisions[0].pending_index].id, 12);
}

}  // namespace
}  // namespace jigsaw
