#include <gtest/gtest.h>

#include <set>

#include "core/conditions.hpp"
#include "core/jigsaw_allocator.hpp"
#include "core/lc.hpp"
#include "test_helpers.hpp"

namespace jigsaw {
namespace {

using testing::must_allocate;

TEST(Lc, NamesAndFlags) {
  EXPECT_EQ(LeastConstrainedAllocator(false).name(), "LC");
  EXPECT_EQ(LeastConstrainedAllocator(true).name(), "LC+S");
  EXPECT_TRUE(LeastConstrainedAllocator(false).isolating());
  EXPECT_FALSE(LeastConstrainedAllocator(true).isolating());
}

TEST(Lc, ExclusiveAllocationsSatisfyConditions) {
  const FatTree t(4, 4, 4);
  const LeastConstrainedAllocator lc(false);
  for (const int size : {1, 3, 11, 20, 37, 64}) {
    ClusterState state(t);
    const Allocation a = must_allocate(lc, state, size, size);
    const auto report = check_full_bandwidth(t, a);
    EXPECT_TRUE(report.ok) << "size " << size << ": " << report.error;
    EXPECT_EQ(a.allocated_nodes(), size);
    EXPECT_TRUE(state.check_invariants());
  }
}

TEST(Lc, UsesGeneralShapesJigsawCannot) {
  // Scatter 2-free-node holes across every leaf of two subtrees; Jigsaw's
  // whole-leaf three-level restriction cannot combine them into one job,
  // but the least-constrained search can (nL = 2 across 8 leaves).
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  for (TreeId tree = 0; tree < 4; ++tree) {
    for (int leaf = 0; leaf < 4; ++leaf) {
      Allocation filler;
      filler.job = 100 + tree * 4 + leaf;
      filler.requested_nodes = 2;
      filler.nodes = {t.node_id(t.leaf_id(tree, leaf), 0),
                      t.node_id(t.leaf_id(tree, leaf), 1)};
      state.apply(filler);
    }
  }
  // 32 free nodes, all in 2-node holes. A 20-node job has no whole leaf.
  const JigsawAllocator jigsaw;
  EXPECT_FALSE(jigsaw.allocate(state, JobRequest{1, 20, 0.0}).has_value());
  const LeastConstrainedAllocator lc(false);
  const auto a = lc.allocate(state, JobRequest{1, 20, 0.0});
  ASSERT_TRUE(a.has_value());
  const auto report = check_full_bandwidth(t, *a);
  EXPECT_TRUE(report.ok) << report.error;
}

TEST(LcS, SharesLinksBetweenJobs) {
  const FatTree t(4, 4, 4);
  ClusterState state(t, 4.0);
  const LeastConstrainedAllocator lcs(true);
  // Two multi-leaf jobs with 2.0 GB/s demand each fit the same wires.
  const Allocation a = must_allocate(lcs, state, 1, 8, 2.0);
  const Allocation b = must_allocate(lcs, state, 2, 8, 2.0);
  EXPECT_EQ(a.bandwidth, 2.0);
  EXPECT_EQ(b.bandwidth, 2.0);
  EXPECT_TRUE(state.check_invariants());
  // A third 2.0 job needs wires with >= 2.0 residual; with 16 nodes left
  // on fewer wires this may or may not fit, but a 0.5 job must.
  EXPECT_TRUE(lcs.allocate(state, JobRequest{3, 8, 0.5}).has_value());
}

TEST(LcS, RespectsBandwidthCap) {
  const FatTree t(2, 2, 2);  // tiny: 8 nodes, 2 leaves/tree
  ClusterState state(t, 4.0);
  const LeastConstrainedAllocator lcs(true);
  // Each 2.0 GB/s multi-leaf job on one subtree drains leaf wires; after
  // two tenants a wire is exhausted.
  const Allocation a = must_allocate(lcs, state, 1, 4, 2.0);
  EXPECT_FALSE(a.leaf_wires.empty());
  double residual_min = 4.0;
  for (const LeafWire& w : a.leaf_wires) {
    residual_min =
        std::min(residual_min, state.residual_leaf_up(w.leaf, w.l2_index));
  }
  EXPECT_DOUBLE_EQ(residual_min, 2.0);
}

TEST(LcS, ZeroDemandJobsAlwaysShareable) {
  const FatTree t(4, 4, 4);
  ClusterState state(t, 4.0);
  const LeastConstrainedAllocator lcs(true);
  for (JobId job = 0; job < 8; ++job) {
    const auto a = lcs.allocate(state, JobRequest{job, 6, 0.0});
    ASSERT_TRUE(a.has_value());
    state.apply(*a);
  }
  EXPECT_EQ(state.total_free_nodes(), t.total_nodes() - 48);
}

TEST(Lc, BudgetExhaustionReportsAndFailsSoft) {
  const FatTree t(8, 8, 16);
  ClusterState state(t);
  const LeastConstrainedAllocator lc(false, /*step_budget=*/16);
  SearchStats stats;
  // With a 16-step budget the allocator may give up quickly; it must not
  // crash, and exhaustion must be reported.
  const auto a = lc.allocate(state, JobRequest{1, 100, 0.0}, &stats);
  if (!a.has_value()) {
    EXPECT_TRUE(stats.budget_exhausted);
  }
  EXPECT_LE(stats.steps, 16u + 8u);
}

TEST(Lc, FillsFragmentedMachineFully) {
  const FatTree t(2, 3, 4);
  ClusterState state(t);
  const LeastConstrainedAllocator lc(false);
  int placed = 0;
  // Sizes chosen to leave awkward remainders.
  for (const int size : {5, 5, 5, 5, 2, 1, 1}) {
    const auto a = lc.allocate(state, JobRequest{placed, size, 0.0});
    ASSERT_TRUE(a.has_value()) << "size " << size;
    state.apply(*a);
    ++placed;
  }
  EXPECT_EQ(state.total_free_nodes(), 0);
}

}  // namespace
}  // namespace jigsaw
