// Cross-module integration: whole simulations, scheme orderings, and the
// paper's headline qualitative claims at reduced scale.

#include <gtest/gtest.h>

#include <memory>

#include "core/baseline.hpp"
#include "core/jigsaw_allocator.hpp"
#include "core/laas.hpp"
#include "core/lc.hpp"
#include "core/ta.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"

namespace jigsaw {
namespace {

struct SchemeResult {
  std::string name;
  SimMetrics metrics;
};

std::vector<SchemeResult> run_all(const FatTree& topo, const Trace& trace,
                                  const SimConfig& config) {
  std::vector<std::unique_ptr<Allocator>> schemes;
  schemes.push_back(std::make_unique<BaselineAllocator>());
  schemes.push_back(std::make_unique<JigsawAllocator>());
  schemes.push_back(std::make_unique<LaasAllocator>());
  schemes.push_back(std::make_unique<TaAllocator>());
  std::vector<SchemeResult> results;
  for (const auto& scheme : schemes) {
    results.push_back(
        SchemeResult{scheme->name(), simulate(topo, *scheme, trace, config)});
  }
  return results;
}

double util_of(const std::vector<SchemeResult>& results,
               const std::string& name) {
  for (const auto& r : results) {
    if (r.name == name) return r.metrics.steady_utilization;
  }
  throw std::logic_error("scheme missing: " + name);
}

TEST(Integration, UtilizationOrderingMatchesFigure6) {
  // Figure 6's qualitative ordering under heavy load:
  // Baseline > Jigsaw > LaaS > TA.
  const FatTree topo = FatTree::from_radix(8);  // 256 nodes, quick
  SyntheticParams params;
  params.jobs = 400;
  params.mean_size = 4.0;  // scaled to the smaller tree
  params.seed = 77;
  const Trace trace = synthetic_trace(params);
  const auto results = run_all(topo, trace, SimConfig{});
  const double baseline = util_of(results, "Baseline");
  const double jigsaw = util_of(results, "Jigsaw");
  const double laas = util_of(results, "LaaS");
  const double ta = util_of(results, "TA");
  EXPECT_GE(baseline, jigsaw);
  EXPECT_GT(jigsaw, laas);
  EXPECT_GT(jigsaw, ta);
  EXPECT_GT(jigsaw, 0.85);    // high utilization claim (small tree is harsher)
  EXPECT_GT(baseline, 0.90);
}

TEST(Integration, AllSchemesCompleteIdenticalWorkload) {
  const FatTree topo = FatTree::from_radix(8);
  SyntheticParams params;
  params.jobs = 200;
  params.mean_size = 4.0;
  params.seed = 78;
  const Trace trace = synthetic_trace(params);
  for (const auto& r : run_all(topo, trace, SimConfig{})) {
    EXPECT_EQ(r.metrics.completed, 200u) << r.name;
  }
}

TEST(Integration, SpeedupsImproveJigsawTurnaroundRelativeToBaseline) {
  const FatTree topo = FatTree::from_radix(8);
  SyntheticParams params;
  params.jobs = 300;
  params.mean_size = 4.0;
  params.seed = 79;
  const Trace trace = synthetic_trace(params);
  const BaselineAllocator baseline;
  const JigsawAllocator jigsaw;

  SimConfig none;
  SimConfig twenty;
  twenty.scenario = SpeedupScenario::kFixed20;
  const double base = simulate(topo, baseline, trace, none).makespan;
  const double jig_none = simulate(topo, jigsaw, trace, none).makespan;
  const double jig_twenty = simulate(topo, jigsaw, trace, twenty).makespan;
  // Without speed-ups Jigsaw pays a small makespan penalty; with 20%
  // speed-ups it must beat Baseline (Figure 8's crossover).
  EXPECT_GE(jig_none, base * 0.98);
  EXPECT_LT(jig_twenty, base);
}

TEST(Integration, LaasWastesNodesJigsawDoesNot) {
  const FatTree topo = FatTree::from_radix(8);  // 16-node subtrees
  SyntheticParams params;
  params.jobs = 200;
  params.mean_size = 8.0;  // a healthy share of cross-subtree jobs
  params.seed = 80;
  const Trace trace = synthetic_trace(params);
  const JigsawAllocator jigsaw;
  const LaasAllocator laas;
  const double jig_waste =
      simulate(topo, jigsaw, trace, SimConfig{}).steady_waste;
  const double laas_waste =
      simulate(topo, laas, trace, SimConfig{}).steady_waste;
  EXPECT_DOUBLE_EQ(jig_waste, 0.0);
  EXPECT_GT(laas_waste, 0.01);  // rounding on subtree-spanning jobs
}

TEST(Integration, DeterministicAcrossRuns) {
  const FatTree topo = FatTree::from_radix(8);
  SyntheticParams params;
  params.jobs = 150;
  params.mean_size = 4.0;
  params.seed = 81;
  const Trace trace = synthetic_trace(params);
  const JigsawAllocator jigsaw;
  const SimMetrics a = simulate(topo, jigsaw, trace, SimConfig{});
  const SimMetrics b = simulate(topo, jigsaw, trace, SimConfig{});
  EXPECT_DOUBLE_EQ(a.steady_utilization, b.steady_utilization);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.mean_turnaround_all, b.mean_turnaround_all);
}

}  // namespace
}  // namespace jigsaw
