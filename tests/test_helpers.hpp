// Shared helpers for the test suite.

#pragma once

#include <optional>
#include <stdexcept>

#include "core/allocator.hpp"

namespace jigsaw::testing {

/// Allocate-and-apply; throws when the allocator finds no placement.
inline Allocation must_allocate(const Allocator& allocator,
                                ClusterState& state, JobId job, int nodes,
                                double bandwidth = 0.0) {
  const auto alloc =
      allocator.allocate(state, JobRequest{job, nodes, bandwidth});
  if (!alloc.has_value()) {
    throw std::runtime_error("expected an allocation for job " +
                             std::to_string(job));
  }
  state.apply(*alloc);
  return *alloc;
}

}  // namespace jigsaw::testing
