// Admission-time quick-reject screen (Allocator::quick_reject +
// SimConfig::admission_quick_reject): the screen must be *sound* — it
// only fires when allocate() would certainly fail — which makes enabling
// it decision-neutral: the same jobs start at the same times, only the
// number of placement searches changes.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/baseline.hpp"
#include "core/jigsaw_allocator.hpp"
#include "core/laas.hpp"
#include "core/lc.hpp"
#include "core/ta.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace jigsaw {
namespace {

enum class Scheme { kBaseline, kJigsaw, kLaas, kTa, kLc, kLcs };

AllocatorPtr make(Scheme scheme) {
  switch (scheme) {
    case Scheme::kBaseline: return std::make_unique<BaselineAllocator>();
    case Scheme::kJigsaw: return std::make_unique<JigsawAllocator>();
    case Scheme::kLaas: return std::make_unique<LaasAllocator>();
    case Scheme::kTa: return std::make_unique<TaAllocator>();
    case Scheme::kLc:
      return std::make_unique<LeastConstrainedAllocator>(false);
    case Scheme::kLcs:
      return std::make_unique<LeastConstrainedAllocator>(true);
  }
  return nullptr;
}

// Soundness property: over random churn states and random requests,
// quick_reject == true implies allocate() fails. (The converse is not
// required — the screen errs toward false.)
class QuickRejectSoundness
    : public ::testing::TestWithParam<std::tuple<Scheme, int>> {};

TEST_P(QuickRejectSoundness, RejectImpliesAllocateFails) {
  const auto [scheme, seed] = GetParam();
  const AllocatorPtr allocator = make(scheme);
  const FatTree t = FatTree::from_radix(8);  // 256 nodes
  ClusterState state(t);
  Rng rng(static_cast<std::uint64_t>(seed) * 104729 + 7);

  std::map<JobId, Allocation> live;
  int screened = 0;
  int probes = 0;
  for (JobId job = 0; job < 300; ++job) {
    if (!live.empty() && rng.below(3) == 0) {
      auto it = live.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.below(live.size())));
      state.release(it->second);
      live.erase(it);
      continue;
    }
    // Mostly large requests so the cluster saturates and the screen has
    // shortage states to fire on.
    const int size = 1 + static_cast<int>(rng.below(96));
    const double demand =
        scheme == Scheme::kLcs ? 0.5 + 0.5 * static_cast<double>(rng.below(4))
                               : 0.0;
    const JobRequest request{job, size, demand};
    ++probes;
    const bool rejected = allocator->quick_reject(state, request);
    auto alloc = allocator->allocate(state, request);
    if (rejected) {
      ++screened;
      ASSERT_FALSE(alloc.has_value())
          << "unsound quick_reject: size " << size << " with "
          << state.total_free_nodes() << " free nodes";
      continue;
    }
    if (!alloc.has_value()) continue;
    state.apply(*alloc);
    live.emplace(job, std::move(*alloc));
  }
  // The property ran on a meaningful sample, including fired screens.
  EXPECT_GE(probes, 100);
  EXPECT_GT(screened, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, QuickRejectSoundness,
    ::testing::Combine(::testing::Values(Scheme::kBaseline, Scheme::kJigsaw,
                                         Scheme::kLaas, Scheme::kTa,
                                         Scheme::kLc, Scheme::kLcs),
                       ::testing::Values(1, 2, 3)));

// Decision neutrality end to end: for every scheme, a full Synth-16 run
// with the screen on is %.17g bit-identical to the run with it off in
// every decision-derived metric, the screen demonstrably fired, and the
// accounting closes: every screened call is an allocate call saved.
TEST(QuickReject, DecisionNeutralOnSynth16AllSchemes) {
  Trace trace = named_synthetic("Synth-16", 600);
  Rng rng(0xBADC0FFEEULL);
  assign_bandwidth_classes(trace, rng);
  const FatTree topo = FatTree::from_radix(16);

  for (const Scheme scheme :
       {Scheme::kBaseline, Scheme::kJigsaw, Scheme::kLaas, Scheme::kTa,
        Scheme::kLc, Scheme::kLcs}) {
    const AllocatorPtr allocator = make(scheme);
    SCOPED_TRACE(allocator->name());

    SimConfig off;
    const SimMetrics m_off = simulate(topo, *allocator, trace, off);
    SimConfig on;
    on.admission_quick_reject = true;
    const SimMetrics m_on = simulate(topo, *allocator, trace, on);

    EXPECT_DOUBLE_EQ(m_on.steady_utilization, m_off.steady_utilization);
    EXPECT_DOUBLE_EQ(m_on.makespan, m_off.makespan);
    EXPECT_DOUBLE_EQ(m_on.mean_turnaround_all, m_off.mean_turnaround_all);
    EXPECT_DOUBLE_EQ(m_on.mean_wait, m_off.mean_wait);
    EXPECT_EQ(m_on.completed, m_off.completed);

    EXPECT_EQ(m_off.quick_rejects, 0u);
    // TA is the exception: it blocks on uplink-isolation conditions while
    // free nodes stay plentiful (it runs the lowest utilization of the
    // five schemes), so the node-shortage screen legitimately never fires
    // for it on this workload.
    if (scheme != Scheme::kTa) {
      EXPECT_GT(m_on.quick_rejects, 0u);
    }
    // Exactly the screened searches disappear, none of the productive
    // ones: the try_alloc sequence is unchanged, each call either runs
    // or is screened.
    EXPECT_EQ(m_on.allocate_calls + m_on.quick_rejects,
              m_off.allocate_calls);
    EXPECT_LE(m_on.search_steps, m_off.search_steps);
  }
}

}  // namespace
}  // namespace jigsaw
