#include <gtest/gtest.h>

#include "core/shapes.hpp"

namespace jigsaw {
namespace {

TEST(TwoLevelShapes, AllSumToSize) {
  const FatTree t(8, 8, 16);
  for (int size = 1; size <= 64; ++size) {
    for (const auto& s : two_level_shapes(size, t)) {
      EXPECT_EQ(s.total(), size);
      EXPECT_LT(s.remainder, s.nodes_per_leaf);
      EXPECT_GE(s.full_leaves, 1);
      EXPECT_LE(s.leaves_touched(), t.leaves_per_tree());
    }
  }
}

TEST(TwoLevelShapes, DensestFirst) {
  const FatTree t(8, 8, 16);
  const auto shapes = two_level_shapes(11, t);
  ASSERT_FALSE(shapes.empty());
  EXPECT_EQ(shapes.front().nodes_per_leaf, 8);  // 1*8 + 3
  for (std::size_t k = 1; k < shapes.size(); ++k) {
    EXPECT_LT(shapes[k].nodes_per_leaf, shapes[k - 1].nodes_per_leaf);
  }
}

TEST(TwoLevelShapes, SingleNodeJob) {
  const FatTree t(8, 8, 16);
  const auto shapes = two_level_shapes(1, t);
  ASSERT_EQ(shapes.size(), 1u);
  EXPECT_EQ(shapes[0].full_leaves, 1);
  EXPECT_EQ(shapes[0].nodes_per_leaf, 1);
  EXPECT_EQ(shapes[0].remainder, 0);
}

TEST(TwoLevelShapes, TooManyLeavesExcluded) {
  const FatTree t(2, 3, 4);  // at most 6 nodes per subtree
  // size 6 fits only as 3 leaves x 2 (or fewer leaves with remainder).
  for (const auto& s : two_level_shapes(6, t)) {
    EXPECT_LE(s.leaves_touched(), 3);
  }
  // size 7 exceeds a subtree entirely: no two-level shape exists.
  EXPECT_TRUE(two_level_shapes(7, t).empty());
}

TEST(ThreeLevelShapes, JigsawRestrictionUsesWholeLeaves) {
  const FatTree t(8, 8, 16);
  for (const auto& s : three_level_shapes(100, t, true)) {
    EXPECT_EQ(s.nodes_per_leaf, 8);
    EXPECT_EQ(s.total(), 100);
    EXPECT_GE(s.trees_touched(), 2);
    EXPECT_LE(s.trees_touched(), t.trees());
    EXPECT_LT(s.rem_leaf_nodes, s.nodes_per_leaf);
    if (s.has_remainder_tree()) {
      EXPECT_LT(s.remainder_nodes(), s.nodes_per_tree());
    }
  }
}

TEST(ThreeLevelShapes, FigureThreeExample) {
  // Figure 3: N=11 on a tree with 2 nodes/leaf: T=2 trees of nT=4, plus a
  // remainder tree with one full leaf and a one-node remainder leaf.
  const FatTree t(2, 3, 4);
  bool found = false;
  for (const auto& s : three_level_shapes(11, t, true)) {
    if (s.full_trees == 2 && s.leaves_per_tree == 2 && s.rem_full_leaves == 1 &&
        s.rem_leaf_nodes == 1) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ThreeLevelShapes, GeneralFamilyIsSuperset) {
  const FatTree t(8, 8, 16);
  const auto restricted = three_level_shapes(100, t, true);
  const auto general = three_level_shapes(100, t, false);
  EXPECT_GT(general.size(), restricted.size());
  for (const auto& s : general) {
    EXPECT_EQ(s.total(), 100);
    EXPECT_LE(s.nodes_per_leaf, 8);
    EXPECT_GE(s.nodes_per_leaf, 1);
  }
}

TEST(ThreeLevelShapes, NoSingleTreeShapes) {
  const FatTree t(8, 8, 16);
  // 16 nodes fit in one subtree; the three-level family must not include
  // single-subtree decompositions (those belong to the two-level pass).
  for (const auto& s : three_level_shapes(16, t, false)) {
    EXPECT_GE(s.trees_touched(), 2);
  }
}

TEST(Shapes, InvalidSizeThrows) {
  const FatTree t(4, 4, 4);
  EXPECT_THROW(two_level_shapes(0, t), std::invalid_argument);
  EXPECT_THROW(three_level_shapes(-1, t, true), std::invalid_argument);
}

}  // namespace
}  // namespace jigsaw
