// Precomputed shape tables (core/shape_table.hpp): golden equivalence
// with the runtime enumerators at every (k, n), clean rejection of
// corrupt/truncated/mismatched files, transparent runtime fallback, and
// bit-identical SimMetrics with tables on vs off at every SIMD dispatch
// level the host supports.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <string>

#include "core/baseline.hpp"
#include "core/jigsaw_allocator.hpp"
#include "core/laas.hpp"
#include "core/lc.hpp"
#include "core/shape_table.hpp"
#include "core/ta.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace jigsaw {
namespace {

std::string temp_path(const char* tag) {
  return testing::TempDir() + "/shape_table_" + tag + "_" +
         std::to_string(::getpid()) + ".jst";
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.write(bytes.data(),
                        static_cast<std::streamsize>(bytes.size())));
}

/// Every sequence in `table` equals the runtime enumeration, element for
/// element, over the full size range.
void expect_matches_runtime(const ShapeTable& table, const FatTree& topo) {
  ASSERT_TRUE(table.matches(topo));
  for (int n = 1; n <= topo.total_nodes(); ++n) {
    const auto t2 = table.two_level(n);
    const auto r2 = two_level_shapes(n, topo);
    ASSERT_EQ(t2.size(), r2.size()) << "two-level n=" << n;
    for (std::size_t i = 0; i < r2.size(); ++i) {
      EXPECT_EQ(t2[i].full_leaves, r2[i].full_leaves);
      EXPECT_EQ(t2[i].nodes_per_leaf, r2[i].nodes_per_leaf);
      EXPECT_EQ(t2[i].remainder, r2[i].remainder);
    }
    const auto t3 = table.three_level_restricted(n);
    const auto r3 = three_level_shapes(n, topo, true);
    ASSERT_EQ(t3.size(), r3.size()) << "three-level n=" << n;
    for (std::size_t i = 0; i < r3.size(); ++i) {
      EXPECT_EQ(t3[i].full_trees, r3[i].full_trees);
      EXPECT_EQ(t3[i].leaves_per_tree, r3[i].leaves_per_tree);
      EXPECT_EQ(t3[i].nodes_per_leaf, r3[i].nodes_per_leaf);
      EXPECT_EQ(t3[i].rem_full_leaves, r3[i].rem_full_leaves);
      EXPECT_EQ(t3[i].rem_leaf_nodes, r3[i].rem_leaf_nodes);
    }
  }
}

class ShapeTableRadix : public ::testing::TestWithParam<int> {};

TEST_P(ShapeTableRadix, RoundTripMatchesRuntimeEverywhere) {
  const FatTree topo = FatTree::from_radix(GetParam());
  const std::string path =
      temp_path(("k" + std::to_string(GetParam())).c_str());
  write_file(path, ShapeTable::serialize(topo));

  std::string error;
  const auto table = ShapeTable::load(path, &error);
  ASSERT_NE(table, nullptr) << error;
  EXPECT_EQ(table->m1(), topo.nodes_per_leaf());
  EXPECT_EQ(table->m2(), topo.leaves_per_tree());
  EXPECT_EQ(table->m3(), topo.trees());
  EXPECT_EQ(table->total_nodes(), topo.total_nodes());
  expect_matches_runtime(*table, topo);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(ProductionRadixes, ShapeTableRadix,
                         ::testing::Values(16, 28, 48));

TEST(ShapeTable, SeqServesTableWhenInstalledAndRuntimeOtherwise) {
  const FatTree topo = FatTree::from_radix(16);
  const std::string path = temp_path("serve");
  write_file(path, ShapeTable::serialize(topo));

  clear_shape_tables();
  reset_shape_serve_counters();

  // No table installed: runtime fallback, counted as such.
  auto seq = two_level_shape_seq(40, topo);
  EXPECT_FALSE(seq.table_backed());
  EXPECT_EQ(shape_serve_counters().two_level_runtime, 1u);
  EXPECT_EQ(shape_serve_counters().two_level_table, 0u);

  std::string error;
  install_shape_table(ShapeTable::load(path, &error));
  ASSERT_EQ(installed_shape_table_count(), 1u);

  auto table_seq = two_level_shape_seq(40, topo);
  EXPECT_TRUE(table_seq.table_backed());
  EXPECT_EQ(shape_serve_counters().two_level_table, 1u);
  ASSERT_EQ(table_seq.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(table_seq[i].full_leaves, seq[i].full_leaves);
    EXPECT_EQ(table_seq[i].nodes_per_leaf, seq[i].nodes_per_leaf);
    EXPECT_EQ(table_seq[i].remainder, seq[i].remainder);
  }

  auto three = three_level_shape_seq(300, topo, true);
  EXPECT_TRUE(three.table_backed());
  // The general (every-nL) family is runtime-only by design.
  auto general = three_level_shape_seq(300, topo, false);
  EXPECT_FALSE(general.table_backed());
  EXPECT_EQ(shape_serve_counters().three_level_general_runtime, 1u);

  // A different topology still falls back at runtime.
  const FatTree other = FatTree::from_radix(8);
  EXPECT_FALSE(two_level_shape_seq(10, other).table_backed());

  // A table-backed seq created before clear_shape_tables() keeps its
  // mapping alive through its keeper; reading it after the clear is safe.
  clear_shape_tables();
  EXPECT_GT(table_seq.size(), 0u);
  EXPECT_EQ(table_seq[0].full_leaves, seq[0].full_leaves);
  std::remove(path.c_str());
}

TEST(ShapeTable, CorruptTruncatedAndMismatchedFilesFailCleanly) {
  const FatTree topo = FatTree::from_radix(16);
  const std::string good = ShapeTable::serialize(topo);
  const std::string path = temp_path("corrupt");
  std::mt19937_64 rng(0xC0221071ULL);

  // Version mismatch: bump the version field (offset 8) past the known
  // versions (1 canonical, 2 ranked) — must name the versions in the
  // error.
  {
    std::string bytes = good;
    bytes[8] = 3;
    write_file(path, bytes);
    std::string error;
    EXPECT_EQ(ShapeTable::load(path, &error), nullptr);
    EXPECT_NE(error.find("version"), std::string::npos) << error;
  }
  // Bad magic.
  {
    std::string bytes = good;
    bytes[0] ^= 0x40;
    write_file(path, bytes);
    std::string error;
    EXPECT_EQ(ShapeTable::load(path, &error), nullptr);
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
  }
  // Missing file.
  {
    std::string error;
    EXPECT_EQ(ShapeTable::load(path + ".does-not-exist", &error), nullptr);
    EXPECT_FALSE(error.empty());
  }

  // Property: >= 100 random corruptions (bit flips and truncations) are
  // either rejected with a clean error, or — only possible for flips in
  // the unvalidated reserved header field — load into a table that still
  // serves every sequence correctly. Never a crash, never wrong data.
  int rejected = 0;
  for (int trial = 0; trial < 120; ++trial) {
    std::string bytes = good;
    if (trial % 3 == 0) {
      bytes.resize(rng() % good.size());  // truncate, possibly to zero
    } else {
      const std::size_t at = rng() % bytes.size();
      bytes[at] = static_cast<char>(bytes[at] ^ (1u << (rng() % 8)));
    }
    write_file(path, bytes);
    std::string error;
    const auto table = ShapeTable::load(path, &error);
    if (table == nullptr) {
      EXPECT_FALSE(error.empty()) << "trial " << trial;
      ++rejected;
    } else {
      expect_matches_runtime(*table, topo);
    }
  }
  EXPECT_GE(rejected, 100);
  std::remove(path.c_str());
}

TEST(ShapeTable, InstallPathsStopsAtFirstBadFile) {
  const FatTree topo = FatTree::from_radix(8);
  const std::string ok_path = temp_path("list_ok");
  write_file(ok_path, ShapeTable::serialize(topo));
  const std::string bad_path = temp_path("list_bad");
  write_file(bad_path, "not a shape table");

  clear_shape_tables();
  std::string error;
  EXPECT_EQ(install_shape_tables(ok_path + ":" + bad_path, &error), 1u);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(installed_shape_table_count(), 1u);

  // The failed install leaves the good table serving — and the scheduler
  // API still falls back to runtime for everything else.
  EXPECT_TRUE(two_level_shape_seq(10, topo).table_backed());
  clear_shape_tables();
  std::remove(ok_path.c_str());
  std::remove(bad_path.c_str());
}

// Bit-identical decisions: for every scheme, SimMetrics with the shape
// table installed must equal the runtime-enumeration metrics down to the
// last bit (%.17g-equivalent via EXPECT_DOUBLE_EQ), at every SIMD
// dispatch level the host supports. ctest runs this TEST in its own
// process, so the global table registry and dispatch level reset with it.
TEST(ShapeTable, GoldenSimMetricsInvariantAcrossTableAndSimdLevels) {
  Trace trace = named_synthetic("Synth-16", 400);
  Rng rng(0xBADC0FFEEULL);
  assign_bandwidth_classes(trace, rng);
  const FatTree topo = FatTree::from_radix(16);

  const std::string path = temp_path("golden");
  write_file(path, ShapeTable::serialize(topo));

  const BaselineAllocator baseline;
  const LeastConstrainedAllocator lcs(true);
  const JigsawAllocator jigsaw;
  const LaasAllocator laas;
  const TaAllocator ta;
  const Allocator* allocators[] = {&baseline, &lcs, &jigsaw, &laas, &ta};

  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::detected_level() >= simd::Level::kAvx2) {
    levels.push_back(simd::Level::kAvx2);
  }
  if (simd::detected_level() >= simd::Level::kAvx512) {
    levels.push_back(simd::Level::kAvx512);
  }

  const simd::Level level_before = simd::active_level();
  for (const Allocator* alloc : allocators) {
    // Reference: scalar kernels, runtime enumeration.
    clear_shape_tables();
    simd::set_active_level(simd::Level::kScalar);
    const SimMetrics want = simulate(topo, *alloc, trace, SimConfig{});

    for (const bool with_table : {false, true}) {
      clear_shape_tables();
      if (with_table) {
        std::string error;
        auto table = ShapeTable::load(path, &error);
        ASSERT_NE(table, nullptr) << error;
        install_shape_table(std::move(table));
      }
      for (const simd::Level level : levels) {
        SCOPED_TRACE(testing::Message()
                     << alloc->name() << " table=" << with_table
                     << " level=" << simd::level_name(level));
        simd::set_active_level(level);
        const SimMetrics got = simulate(topo, *alloc, trace, SimConfig{});
        EXPECT_DOUBLE_EQ(got.steady_utilization, want.steady_utilization);
        EXPECT_DOUBLE_EQ(got.makespan, want.makespan);
        EXPECT_DOUBLE_EQ(got.mean_turnaround_all, want.mean_turnaround_all);
        EXPECT_DOUBLE_EQ(got.mean_wait, want.mean_wait);
        EXPECT_EQ(got.completed, want.completed);
        EXPECT_EQ(got.allocate_calls, want.allocate_calls);
        EXPECT_EQ(got.search_steps, want.search_steps);
      }
    }
  }
  simd::set_active_level(level_before);
  clear_shape_tables();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace jigsaw
