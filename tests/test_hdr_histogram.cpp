// Log2 bucket math and the lock-free HDR histogram.
//
// The bucket layout (Log2Buckets) is the contract every latency metric
// in the repo shares — the Prometheus exposition's `le` boundaries, the
// registry snapshots, and the bench summaries all assume bucket_of/lo/hi
// agree. These tests pin the edges exactly and check the percentile
// estimator against SortedSamples (the exact sort-based reference) on
// adversarial distributions, using the histogram's stated guarantee:
// the estimate lies within one bucket (a factor of 2) of the true
// nearest-rank sample.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "obs/hdr_histogram.hpp"
#include "util/stats.hpp"

namespace jigsaw {
namespace {

using obs::HdrHistogram;
using obs::Log2Buckets;

TEST(Log2Buckets, NonPositiveAndNonFiniteLandInBucketZero) {
  EXPECT_EQ(Log2Buckets::bucket_of(0.0), 0);
  EXPECT_EQ(Log2Buckets::bucket_of(-0.0), 0);
  EXPECT_EQ(Log2Buckets::bucket_of(-1.0), 0);
  EXPECT_EQ(Log2Buckets::bucket_of(-std::numeric_limits<double>::infinity()),
            0);
  EXPECT_EQ(Log2Buckets::bucket_of(std::numeric_limits<double>::quiet_NaN()),
            0);
}

TEST(Log2Buckets, EdgesAndInteriorsMatchTheLayout) {
  // Bucket 1+k covers [2^(k-32), 2^(k-32+1)): the inclusive lower edge
  // and the geometric interior land inside, the exclusive upper edge
  // lands in the next bucket (clamped at the top).
  for (int b = 1; b < Log2Buckets::kBuckets; ++b) {
    SCOPED_TRACE(b);
    EXPECT_EQ(Log2Buckets::bucket_of(Log2Buckets::lo(b)), b);
    EXPECT_EQ(Log2Buckets::bucket_of(Log2Buckets::lo(b) * 1.5), b);
    const int above = Log2Buckets::bucket_of(Log2Buckets::hi(b));
    EXPECT_EQ(above, std::min(b + 1, Log2Buckets::kBuckets - 1));
  }
}

TEST(Log2Buckets, AdjacentBucketsTile) {
  // hi(b) == lo(b+1): no gaps, no overlap, starting at 0.
  EXPECT_EQ(Log2Buckets::lo(0), 0.0);
  EXPECT_EQ(Log2Buckets::hi(0), std::ldexp(1.0, -Log2Buckets::kExpOffset));
  for (int b = 0; b + 1 < Log2Buckets::kBuckets; ++b) {
    SCOPED_TRACE(b);
    EXPECT_EQ(Log2Buckets::hi(b), Log2Buckets::lo(b + 1));
  }
}

TEST(Log2Buckets, OutOfRangeValuesClampToEndBuckets) {
  // Subnormal-tiny positives clamp into bucket 1, huge values into the
  // last bucket — nothing positive ever falls into the underflow bucket.
  EXPECT_EQ(Log2Buckets::bucket_of(1e-300), 1);
  EXPECT_EQ(Log2Buckets::bucket_of(std::numeric_limits<double>::min()), 1);
  EXPECT_EQ(Log2Buckets::bucket_of(1e300), Log2Buckets::kBuckets - 1);
  EXPECT_EQ(Log2Buckets::bucket_of(std::numeric_limits<double>::infinity()),
            Log2Buckets::kBuckets - 1);
}

TEST(HdrHistogram, CountSumMinMaxMeanAreExact) {
  HdrHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  for (const double v : {0.25, 4.0, 0.5, 1.25}) h.add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 6.0);
  EXPECT_EQ(h.min(), 0.25);
  EXPECT_EQ(h.max(), 4.0);
  EXPECT_EQ(h.mean(), 1.5);
}

TEST(HdrHistogram, BucketCountsMatchBucketOf) {
  HdrHistogram h;
  const std::vector<double> values = {0.0,    -3.0, 1e-9, 0.001, 0.5,
                                      0.5,    1.0,  1.5,  1024.0, 1e12};
  std::uint64_t expected[Log2Buckets::kBuckets] = {};
  for (const double v : values) {
    h.add(v);
    ++expected[Log2Buckets::bucket_of(v)];
  }
  for (int b = 0; b < Log2Buckets::kBuckets; ++b) {
    SCOPED_TRACE(b);
    EXPECT_EQ(h.bucket_count(b), expected[b]);
  }
}

TEST(HdrHistogram, MergeFoldsCountsSumsAndExtremes) {
  HdrHistogram a;
  HdrHistogram b;
  for (const double v : {0.5, 2.0, 8.0}) a.add(v);
  for (const double v : {0.125, 2.0}) b.add(v);
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.sum(), 12.625);
  EXPECT_EQ(a.min(), 0.125);
  EXPECT_EQ(a.max(), 8.0);
  EXPECT_EQ(a.bucket_count(Log2Buckets::bucket_of(2.0)), 2u);
  EXPECT_EQ(a.bucket_count(Log2Buckets::bucket_of(0.125)), 1u);

  // Merging an empty histogram changes nothing — including min/max,
  // which must not absorb the empty side's +/-infinity sentinels.
  const HdrHistogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.min(), 0.125);
  EXPECT_EQ(a.max(), 8.0);
}

TEST(HdrHistogram, CopyAndAssignPreserveEverything) {
  HdrHistogram h;
  for (const double v : {0.5, 3.0, 700.0}) h.add(v);
  const HdrHistogram copy(h);
  EXPECT_EQ(copy.count(), h.count());
  EXPECT_EQ(copy.sum(), h.sum());
  EXPECT_EQ(copy.min(), h.min());
  EXPECT_EQ(copy.max(), h.max());
  HdrHistogram assigned;
  assigned.add(1e6);  // overwritten by assignment
  assigned = h;
  EXPECT_EQ(assigned.count(), 3u);
  EXPECT_EQ(assigned.max(), 700.0);
  for (int b = 0; b < Log2Buckets::kBuckets; ++b) {
    EXPECT_EQ(assigned.bucket_count(b), h.bucket_count(b));
  }
}

/// Nearest-rank reference sample for percentile p over a sorted vector —
/// the same rank convention the histogram's estimator walks buckets
/// with, so the one-bucket accuracy guarantee applies sample-to-sample.
double nearest_rank(const std::vector<double>& sorted, double p) {
  const double rank = p / 100.0 * static_cast<double>(sorted.size());
  const std::size_t index =
      rank <= 1.0 ? 0
                  : std::min(sorted.size() - 1,
                             static_cast<std::size_t>(std::ceil(rank)) - 1);
  return sorted[index];
}

void expect_within_one_bucket(const HdrHistogram& h,
                              const std::vector<double>& sorted, double p) {
  SCOPED_TRACE(p);
  const double estimate = h.percentile(p);
  const double truth = nearest_rank(sorted, p);
  ASSERT_GT(estimate, 0.0);
  ASSERT_GT(truth, 0.0);
  EXPECT_LE(std::abs(std::log2(estimate / truth)), 1.0 + 1e-9)
      << "estimate " << estimate << " vs nearest-rank sample " << truth;
}

TEST(HdrHistogram, PercentilesTrackSortedSamplesOnAdversarialShapes) {
  // Distributions picked to break midpoint estimators: constant,
  // two-point with a 7-decade gap, log-uniform over 12 decades, and a
  // heavy tail where p999 lives 6 decades above p50.
  std::vector<std::vector<double>> shapes;
  shapes.push_back(std::vector<double>(1000, 3.7));
  {
    std::vector<double> two_point(999, 1e-6);
    two_point.push_back(10.0);
    shapes.push_back(std::move(two_point));
  }
  {
    std::vector<double> log_uniform;
    std::uint64_t x = 0x243F6A8885A308D3ULL;  // deterministic LCG
    for (int i = 0; i < 5000; ++i) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      const double u =
          static_cast<double>(x >> 11) / 9007199254740992.0;  // [0, 1)
      log_uniform.push_back(std::exp2(u * 40.0 - 20.0));
    }
    shapes.push_back(std::move(log_uniform));
  }
  {
    std::vector<double> heavy;
    for (int i = 0; i < 900; ++i) heavy.push_back(1e-3);
    for (int i = 0; i < 99; ++i) heavy.push_back(1.0);
    heavy.push_back(1e3);
    shapes.push_back(std::move(heavy));
  }

  for (std::size_t s = 0; s < shapes.size(); ++s) {
    SCOPED_TRACE(s);
    HdrHistogram h;
    for (const double v : shapes[s]) h.add(v);
    std::vector<double> sorted = shapes[s];
    std::sort(sorted.begin(), sorted.end());
    for (const double p : {50.0, 99.0, 99.9}) {
      expect_within_one_bucket(h, sorted, p);
    }
    // Extremes are exact, not bucket estimates, thanks to the clamp.
    EXPECT_EQ(h.percentile(0.0), sorted.front());
    EXPECT_EQ(h.percentile(100.0), sorted.back());
  }
}

TEST(HdrHistogram, PercentileAgreesWithSortedSamplesWhenDense) {
  // On a dense distribution (no gaps wider than a bucket), the linear
  // interpolation SortedSamples does and the nearest-rank walk agree to
  // within a bucket too — pin that against the library's own reference.
  std::vector<double> values;
  std::uint64_t x = 0x13198A2E03707344ULL;
  for (int i = 0; i < 4000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u = static_cast<double>(x >> 11) / 9007199254740992.0;
    values.push_back(1e-4 * (1.0 + 9.0 * u));  // uniform [100us, 1ms)
  }
  HdrHistogram h;
  for (const double v : values) h.add(v);
  const SortedSamples sorted(values);
  for (const double p : {50.0, 99.0, 99.9}) {
    SCOPED_TRACE(p);
    const double estimate = h.percentile(p);
    const double truth = sorted.percentile(p);
    EXPECT_LE(std::abs(std::log2(estimate / truth)), 1.0 + 1e-9);
  }
}

TEST(HdrHistogram, ConcurrentAddsLoseNothing) {
  // Four writers, no locks: totals must be exact once threads join.
  // Values are powers of two so the double sum is exact regardless of
  // the interleaving.
  HdrHistogram h;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h]() {
      for (int i = 0; i < kPerThread; ++i) {
        h.add(i % 2 == 0 ? 0.5 : 2.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), 4u * kPerThread);
  EXPECT_EQ(h.sum(), 4.0 * (kPerThread / 2) * (0.5 + 2.0));
  EXPECT_EQ(h.min(), 0.5);
  EXPECT_EQ(h.max(), 2.0);
  EXPECT_EQ(h.bucket_count(Log2Buckets::bucket_of(0.5)),
            static_cast<std::uint64_t>(2 * kPerThread));
  EXPECT_EQ(h.bucket_count(Log2Buckets::bucket_of(2.0)),
            static_cast<std::uint64_t>(2 * kPerThread));
}

}  // namespace
}  // namespace jigsaw
