#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/fragmentation.hpp"
#include "core/jigsaw_allocator.hpp"
#include "core/laas.hpp"
#include "core/ta.hpp"
#include "test_helpers.hpp"

namespace jigsaw {
namespace {

using testing::must_allocate;

TEST(Fragmentation, PristineClusterHasNone) {
  const FatTree t(4, 4, 4);
  const ClusterState state(t);
  const JigsawAllocator jigsaw;
  const FragmentationReport r = analyze_fragmentation(state, jigsaw);
  EXPECT_EQ(r.free_nodes, 64);
  EXPECT_EQ(r.fully_free_leaves, 16);
  EXPECT_EQ(r.fully_free_trees, 4);
  EXPECT_EQ(r.largest_placeable, 64);
  EXPECT_DOUBLE_EQ(r.external_fragmentation, 0.0);
  EXPECT_EQ(r.leaf_free_histogram[4], 16);
}

TEST(Fragmentation, FullClusterReportsZeroFrontier) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  must_allocate(jigsaw, state, 1, 64);
  const FragmentationReport r = analyze_fragmentation(state, jigsaw);
  EXPECT_EQ(r.free_nodes, 0);
  EXPECT_EQ(r.largest_placeable, 0);
  EXPECT_EQ(r.leaf_free_histogram[0], 16);
}

TEST(Fragmentation, ScatteredHolesStrandCapacityForJigsaw) {
  // One busy node per leaf: Baseline can still gather all 16 free-node
  // shreds... wait, holes of 3 per leaf. Jigsaw can combine them as
  // 3-per-leaf two-level shapes within a subtree but not across the whole
  // machine in one job; its frontier is below Baseline's.
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  for (LeafId l = 0; l < t.total_leaves(); ++l) {
    Allocation filler;
    filler.job = 100 + l;
    filler.requested_nodes = 1;
    filler.nodes = {t.node_id(l, 0)};
    state.apply(filler);
  }
  const BaselineAllocator baseline;
  const JigsawAllocator jigsaw;
  const FragmentationReport rb = analyze_fragmentation(state, baseline);
  const FragmentationReport rj = analyze_fragmentation(state, jigsaw);
  EXPECT_EQ(rb.free_nodes, 48);
  EXPECT_EQ(rb.largest_placeable, 48);  // Baseline reaches every node
  EXPECT_DOUBLE_EQ(rb.external_fragmentation, 0.0);
  EXPECT_LT(rj.largest_placeable, 48);  // shape conditions strand some
  EXPECT_GT(rj.largest_placeable, 0);
  EXPECT_GT(rj.external_fragmentation, 0.0);
  EXPECT_EQ(rj.fully_free_leaves, 0);
}

TEST(Fragmentation, TaClassBoundariesHandled) {
  // TA's placeability is not monotone: verify the sweep still reports a
  // truthful frontier (a placeable size, with the next size up either
  // placeable=false or beyond free nodes).
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const TaAllocator ta;
  must_allocate(ta, state, 1, 10);  // claims leaves + strands holes
  const FragmentationReport r = analyze_fragmentation(state, ta);
  EXPECT_GT(r.largest_placeable, 0);
  EXPECT_LE(r.largest_placeable, r.free_nodes);
  // The reported frontier really is placeable.
  EXPECT_TRUE(
      ta.allocate(state, JobRequest{9, r.largest_placeable, 0.0}).has_value());
}

TEST(Fragmentation, LaasRoundingShrinksFrontier) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const LaasAllocator laas;
  must_allocate(laas, state, 1, 17);  // 5 whole leaves, 3 wasted nodes
  const FragmentationReport r = analyze_fragmentation(state, laas);
  EXPECT_EQ(r.free_nodes, 44);
  // 11 fully-free leaves remain; a cross-subtree job can claim them all
  // (44 = 11 leaves x 4), so LaaS's frontier is bounded by whole leaves.
  EXPECT_EQ(r.fully_free_leaves, 11);
  EXPECT_EQ(r.largest_placeable, 44);
}

TEST(Fragmentation, HistogramSumsToLeafCount) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  must_allocate(jigsaw, state, 1, 13);
  must_allocate(jigsaw, state, 2, 7);
  const FragmentationReport r = analyze_fragmentation(state, jigsaw);
  int leaves = 0;
  int weighted = 0;
  for (std::size_t k = 0; k < r.leaf_free_histogram.size(); ++k) {
    leaves += r.leaf_free_histogram[k];
    weighted += static_cast<int>(k) * r.leaf_free_histogram[k];
  }
  EXPECT_EQ(leaves, t.total_leaves());
  EXPECT_EQ(weighted, r.free_nodes);
}

}  // namespace
}  // namespace jigsaw
