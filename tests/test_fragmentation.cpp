#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/baseline.hpp"
#include "core/fragmentation.hpp"
#include "core/jigsaw_allocator.hpp"
#include "core/laas.hpp"
#include "core/shape_table.hpp"
#include "core/ta.hpp"
#include "test_helpers.hpp"

namespace jigsaw {
namespace {

using testing::must_allocate;

TEST(Fragmentation, PristineClusterHasNone) {
  const FatTree t(4, 4, 4);
  const ClusterState state(t);
  const JigsawAllocator jigsaw;
  const FragmentationReport r = analyze_fragmentation(state, jigsaw);
  EXPECT_EQ(r.free_nodes, 64);
  EXPECT_EQ(r.fully_free_leaves, 16);
  EXPECT_EQ(r.fully_free_trees, 4);
  EXPECT_EQ(r.largest_placeable, 64);
  EXPECT_DOUBLE_EQ(r.external_fragmentation, 0.0);
  EXPECT_EQ(r.leaf_free_histogram[4], 16);
}

TEST(Fragmentation, FullClusterReportsZeroFrontier) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  must_allocate(jigsaw, state, 1, 64);
  const FragmentationReport r = analyze_fragmentation(state, jigsaw);
  EXPECT_EQ(r.free_nodes, 0);
  EXPECT_EQ(r.largest_placeable, 0);
  EXPECT_EQ(r.leaf_free_histogram[0], 16);
}

TEST(Fragmentation, ScatteredHolesStrandCapacityForJigsaw) {
  // One busy node per leaf: Baseline can still gather all 16 free-node
  // shreds... wait, holes of 3 per leaf. Jigsaw can combine them as
  // 3-per-leaf two-level shapes within a subtree but not across the whole
  // machine in one job; its frontier is below Baseline's.
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  for (LeafId l = 0; l < t.total_leaves(); ++l) {
    Allocation filler;
    filler.job = 100 + l;
    filler.requested_nodes = 1;
    filler.nodes = {t.node_id(l, 0)};
    state.apply(filler);
  }
  const BaselineAllocator baseline;
  const JigsawAllocator jigsaw;
  const FragmentationReport rb = analyze_fragmentation(state, baseline);
  const FragmentationReport rj = analyze_fragmentation(state, jigsaw);
  EXPECT_EQ(rb.free_nodes, 48);
  EXPECT_EQ(rb.largest_placeable, 48);  // Baseline reaches every node
  EXPECT_DOUBLE_EQ(rb.external_fragmentation, 0.0);
  EXPECT_LT(rj.largest_placeable, 48);  // shape conditions strand some
  EXPECT_GT(rj.largest_placeable, 0);
  EXPECT_GT(rj.external_fragmentation, 0.0);
  EXPECT_EQ(rj.fully_free_leaves, 0);
}

TEST(Fragmentation, TaClassBoundariesHandled) {
  // TA's placeability is not monotone: verify the sweep still reports a
  // truthful frontier (a placeable size, with the next size up either
  // placeable=false or beyond free nodes).
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const TaAllocator ta;
  must_allocate(ta, state, 1, 10);  // claims leaves + strands holes
  const FragmentationReport r = analyze_fragmentation(state, ta);
  EXPECT_GT(r.largest_placeable, 0);
  EXPECT_LE(r.largest_placeable, r.free_nodes);
  // The reported frontier really is placeable.
  EXPECT_TRUE(
      ta.allocate(state, JobRequest{9, r.largest_placeable, 0.0}).has_value());
}

TEST(Fragmentation, LaasRoundingShrinksFrontier) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const LaasAllocator laas;
  must_allocate(laas, state, 1, 17);  // 5 whole leaves, 3 wasted nodes
  const FragmentationReport r = analyze_fragmentation(state, laas);
  EXPECT_EQ(r.free_nodes, 44);
  // 11 fully-free leaves remain; a cross-subtree job can claim them all
  // (44 = 11 leaves x 4), so LaaS's frontier is bounded by whole leaves.
  EXPECT_EQ(r.fully_free_leaves, 11);
  EXPECT_EQ(r.largest_placeable, 44);
}

TEST(Fragmentation, HistogramSumsToLeafCount) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  must_allocate(jigsaw, state, 1, 13);
  must_allocate(jigsaw, state, 2, 7);
  const FragmentationReport r = analyze_fragmentation(state, jigsaw);
  int leaves = 0;
  int weighted = 0;
  for (std::size_t k = 0; k < r.leaf_free_histogram.size(); ++k) {
    leaves += r.leaf_free_histogram[k];
    weighted += static_cast<int>(k) * r.leaf_free_histogram[k];
  }
  EXPECT_EQ(leaves, t.total_leaves());
  EXPECT_EQ(weighted, r.free_nodes);
}

TEST(Fragmentation, ReportsCarryTheConsolidationMetric) {
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  must_allocate(jigsaw, state, 1, 6);
  must_allocate(jigsaw, state, 2, 9);
  const ConsolidationReport c = consolidation(state);
  const FragmentationReport structural = structural_fragmentation(state);
  EXPECT_EQ(structural.largest_free_block, c.largest_block);
  EXPECT_DOUBLE_EQ(structural.consolidation, c.score);
  EXPECT_EQ(structural.largest_placeable, 0);  // no probes in the cheap path
  const FragmentationReport full = analyze_fragmentation(state, jigsaw);
  EXPECT_EQ(full.largest_free_block, c.largest_block);
  EXPECT_DOUBLE_EQ(full.consolidation, c.score);
  EXPECT_GT(full.largest_placeable, 0);
}

TEST(Fragmentation, FrontierBisectionServesFromInstalledShapeTables) {
  // The placeability-frontier probes consult the PR 8 shape-table
  // registry: with a matching table installed the bisection's allocate
  // probes serve every candidate sequence zero-copy (no runtime
  // enumeration), and the reported frontier is identical either way.
  const FatTree t(4, 4, 4);
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  must_allocate(jigsaw, state, 1, 14);
  must_allocate(jigsaw, state, 2, 5);

  // Screens alone, no table installed: only structural impossibility.
  clear_shape_tables();
  EXPECT_TRUE(jigsaw.size_unplaceable(t, 0));
  EXPECT_TRUE(jigsaw.size_unplaceable(t, t.total_nodes() + 1));
  EXPECT_FALSE(jigsaw.size_unplaceable(t, t.total_nodes()));
  const FragmentationReport untabled = analyze_fragmentation(state, jigsaw);

  const std::string path =
      ::testing::TempDir() + "frag_frontier_shapes.jst";
  {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good());
    out << ShapeTable::serialize(t);
  }
  std::string error;
  const auto table = ShapeTable::load(path, &error);
  ASSERT_NE(table, nullptr) << error;
  install_shape_table(table);

  reset_shape_serve_counters();
  const FragmentationReport tabled = analyze_fragmentation(state, jigsaw);
  const ShapeServeCounters served = shape_serve_counters();
  clear_shape_tables();
  std::remove(path.c_str());

  EXPECT_EQ(tabled.largest_placeable, untabled.largest_placeable);
  EXPECT_DOUBLE_EQ(tabled.external_fragmentation,
                   untabled.external_fragmentation);
  EXPECT_GT(served.two_level_table, 0u);
  EXPECT_EQ(served.two_level_runtime, 0u);
  EXPECT_EQ(served.three_level_runtime, 0u);
}

}  // namespace
}  // namespace jigsaw
