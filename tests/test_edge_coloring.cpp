#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "routing/edge_coloring.hpp"
#include "util/rng.hpp"

namespace jigsaw {
namespace {

/// Proper coloring: no two edges sharing a vertex (on the same side) share
/// a color, and colors stay below the maximum degree.
void expect_proper(int n_left, int n_right,
                   const std::vector<std::pair<int, int>>& edges,
                   const std::vector<int>& colors) {
  ASSERT_EQ(edges.size(), colors.size());
  std::vector<int> ldeg(static_cast<std::size_t>(n_left), 0);
  std::vector<int> rdeg(static_cast<std::size_t>(n_right), 0);
  for (const auto& [u, v] : edges) {
    ++ldeg[static_cast<std::size_t>(u)];
    ++rdeg[static_cast<std::size_t>(v)];
  }
  int max_degree = 0;
  for (const int d : ldeg) max_degree = std::max(max_degree, d);
  for (const int d : rdeg) max_degree = std::max(max_degree, d);

  std::set<std::pair<int, int>> left_seen;
  std::set<std::pair<int, int>> right_seen;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    ASSERT_GE(colors[e], 0);
    ASSERT_LT(colors[e], std::max(max_degree, 1));
    EXPECT_TRUE(left_seen.insert({edges[e].first, colors[e]}).second)
        << "color repeated at left vertex " << edges[e].first;
    EXPECT_TRUE(right_seen.insert({edges[e].second, colors[e]}).second)
        << "color repeated at right vertex " << edges[e].second;
  }
}

TEST(EdgeColoring, EmptyGraph) {
  EXPECT_TRUE(bipartite_edge_coloring(3, 3, {}).empty());
}

TEST(EdgeColoring, SingleEdge) {
  const std::vector<std::pair<int, int>> edges{{0, 1}};
  const auto colors = bipartite_edge_coloring(2, 2, edges);
  expect_proper(2, 2, edges, colors);
}

TEST(EdgeColoring, PerfectMatchingDecompositionOfRegularGraph) {
  // Complete bipartite K3,3 has degree 3: colorable with exactly 3 colors,
  // each class a perfect matching.
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < 3; ++u) {
    for (int v = 0; v < 3; ++v) edges.emplace_back(u, v);
  }
  const auto colors = bipartite_edge_coloring(3, 3, edges);
  expect_proper(3, 3, edges, colors);
  // Every color class covers all three left and right vertices.
  for (int c = 0; c < 3; ++c) {
    std::set<int> lefts;
    std::set<int> rights;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (colors[e] != c) continue;
      lefts.insert(edges[e].first);
      rights.insert(edges[e].second);
    }
    EXPECT_EQ(lefts.size(), 3u);
    EXPECT_EQ(rights.size(), 3u);
  }
}

TEST(EdgeColoring, ParallelEdgesGetDistinctColors) {
  const std::vector<std::pair<int, int>> edges{{0, 0}, {0, 0}, {0, 0}};
  const auto colors = bipartite_edge_coloring(1, 1, edges);
  expect_proper(1, 1, edges, colors);
  EXPECT_EQ(std::set<int>(colors.begin(), colors.end()).size(), 3u);
}

TEST(EdgeColoring, OutOfRangeThrows) {
  EXPECT_THROW(bipartite_edge_coloring(1, 1, {{0, 2}}),
               std::invalid_argument);
  EXPECT_THROW(bipartite_edge_coloring(1, 1, {{-1, 0}}),
               std::invalid_argument);
}

class EdgeColoringRandom : public ::testing::TestWithParam<int> {};

TEST_P(EdgeColoringRandom, ProperOnRandomMultigraphs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 2 + static_cast<int>(rng.below(14));
  const int m = static_cast<int>(rng.below(120));
  std::vector<std::pair<int, int>> edges;
  for (int e = 0; e < m; ++e) {
    edges.emplace_back(static_cast<int>(rng.below(static_cast<std::uint64_t>(n))),
                       static_cast<int>(rng.below(static_cast<std::uint64_t>(n))));
  }
  const auto colors = bipartite_edge_coloring(n, n, edges);
  expect_proper(n, n, edges, colors);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeColoringRandom,
                         ::testing::Range(0, 40));

TEST(EdgeColoring, RandomPermutationsAreOneColorable) {
  // A permutation between n left and n right vertices has degree 1.
  Rng rng(99);
  std::vector<std::pair<int, int>> edges;
  std::vector<int> perm(16);
  for (int k = 0; k < 16; ++k) perm[static_cast<std::size_t>(k)] = k;
  for (std::size_t k = perm.size(); k > 1; --k) {
    std::swap(perm[k - 1], perm[rng.below(k)]);
  }
  for (int k = 0; k < 16; ++k) edges.emplace_back(k, perm[static_cast<std::size_t>(k)]);
  const auto colors = bipartite_edge_coloring(16, 16, edges);
  for (const int c : colors) EXPECT_EQ(c, 0);
}

}  // namespace
}  // namespace jigsaw
