// Exhaustive small-scale certification of the §3.2 theory.
//
// On tiny fat-trees, sweep every shape the condition checker accepts and
// every shape-violating perturbation, cross-checking three independent
// oracles: the structural checker (core/conditions), the constructive
// router (routing/rnb_router, sufficiency), and the exact exhaustive
// router (necessity — a violating allocation admits an unroutable
// permutation, which we find by trying adversarial permutations).

#include <gtest/gtest.h>

#include "core/conditions.hpp"
#include "core/jigsaw_allocator.hpp"
#include "core/shapes.hpp"
#include "routing/rnb_router.hpp"
#include "test_helpers.hpp"

namespace jigsaw {
namespace {

using testing::must_allocate;

/// All permutations of up to 6 elements; sampled beyond that.
std::vector<std::vector<Flow>> permutations_of(const Allocation& a,
                                               Rng& rng, int samples) {
  std::vector<NodeId> nodes = a.nodes;
  std::sort(nodes.begin(), nodes.end());
  std::vector<std::vector<Flow>> result;
  if (nodes.size() <= 6) {
    std::vector<NodeId> dsts = nodes;
    do {
      std::vector<Flow> perm;
      for (std::size_t k = 0; k < nodes.size(); ++k) {
        perm.push_back(Flow{nodes[k], dsts[k]});
      }
      result.push_back(std::move(perm));
    } while (std::next_permutation(dsts.begin(), dsts.end()));
  } else {
    for (int s = 0; s < samples; ++s) {
      result.push_back(random_permutation(a, rng));
    }
  }
  return result;
}

class CertifySize : public ::testing::TestWithParam<int> {};

TEST_P(CertifySize, EveryJigsawPartitionRoutesEveryPermutation) {
  const int size = GetParam();
  const FatTree t(2, 3, 4);  // 24 nodes — small enough to enumerate
  ClusterState state(t);
  const JigsawAllocator jigsaw;
  const Allocation a = must_allocate(jigsaw, state, 1, size);
  ASSERT_TRUE(check_full_bandwidth(t, a).ok);
  Rng rng(static_cast<std::uint64_t>(size));
  for (const auto& perm : permutations_of(a, rng, 40)) {
    const auto outcome = route_permutation(t, a, perm);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    ASSERT_TRUE(verify_one_flow_per_link(t, a, outcome.routes).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CertifySize,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12,
                                           15, 18, 24));

TEST(Certify, CheckerAgreesWithExhaustiveRouterOnPerturbations) {
  // Start from legal two-leaf partitions and perturb the wire sets in
  // every single-wire way; whenever the checker rejects, some pairwise
  // exchange permutation must be unroutable OR the partition must lack
  // balance only in a harmless direction (the checker is conservative
  // about extra uplinks, which cannot *break* routability).
  const FatTree t(4, 4, 4);
  Allocation base;
  base.job = 1;
  base.requested_nodes = 4;
  base.nodes = {t.node_id(0, 0), t.node_id(0, 1), t.node_id(1, 0),
                t.node_id(1, 1)};
  base.leaf_wires = {LeafWire{0, 0}, LeafWire{0, 1}, LeafWire{1, 0},
                     LeafWire{1, 1}};
  ASSERT_TRUE(check_full_bandwidth(t, base).ok);

  const std::vector<Flow> exchange{{base.nodes[0], base.nodes[2]},
                                   {base.nodes[1], base.nodes[3]},
                                   {base.nodes[2], base.nodes[0]},
                                   {base.nodes[3], base.nodes[1]}};
  // Removing any one wire breaks either balance or the common set; the
  // exchange permutation must become unroutable.
  for (std::size_t drop = 0; drop < base.leaf_wires.size(); ++drop) {
    Allocation perturbed = base;
    perturbed.leaf_wires.erase(perturbed.leaf_wires.begin() +
                               static_cast<std::ptrdiff_t>(drop));
    EXPECT_FALSE(check_full_bandwidth(t, perturbed).ok);
    const auto outcome = route_permutation_exhaustive(t, perturbed, exchange);
    EXPECT_FALSE(outcome.ok) << "drop " << drop;
  }
  // Swapping one leaf's wire to a non-common index likewise.
  for (int new_index : {2, 3}) {
    Allocation perturbed = base;
    perturbed.leaf_wires[3] = LeafWire{1, new_index};
    EXPECT_FALSE(check_full_bandwidth(t, perturbed).ok);
    const auto outcome = route_permutation_exhaustive(t, perturbed, exchange);
    EXPECT_FALSE(outcome.ok);
  }
}

TEST(Certify, ShapeArithmeticCoversEveryJobSize) {
  // For every job size on several topologies, the two- and three-level
  // shape families jointly cover the size (two-level alone when the job
  // fits a subtree).
  for (const auto& [m1, m2, m3] :
       {std::tuple{2, 3, 4}, std::tuple{4, 4, 4}, std::tuple{3, 5, 6}}) {
    const FatTree t(m1, m2, m3);
    for (int size = 1; size <= t.total_nodes(); ++size) {
      const auto two = two_level_shapes(size, t);
      const auto three = three_level_shapes(size, t, true);
      EXPECT_TRUE(!two.empty() || !three.empty())
          << "size " << size << " on " << t.describe();
      if (size <= t.nodes_per_leaf() * t.leaves_per_tree()) {
        EXPECT_FALSE(two.empty()) << "size " << size;
      }
    }
  }
}

TEST(Certify, JigsawFrontierCoversWholeMachineFromEmpty) {
  // From an empty machine, Jigsaw must place every size 1..N (the shapes
  // exist and all resources are free): completeness at the boundary.
  const FatTree t(2, 3, 4);
  const JigsawAllocator jigsaw;
  for (int size = 1; size <= t.total_nodes(); ++size) {
    const ClusterState state(t);
    EXPECT_TRUE(jigsaw.allocate(state, JobRequest{1, size, 0.0}).has_value())
        << "size " << size;
  }
}

}  // namespace
}  // namespace jigsaw
