#include <gtest/gtest.h>

#include <map>

#include "routing/dmodk.hpp"

namespace jigsaw {
namespace {

TEST(DmodK, SelfFlowUsesNoLinks) {
  const FatTree t(4, 4, 4);
  EXPECT_TRUE(dmodk_route(t, 5, 5).empty());
}

TEST(DmodK, SameLeafStaysLocal) {
  const FatTree t(4, 4, 4);
  const auto route = dmodk_route(t, t.node_id(3, 0), t.node_id(3, 2));
  ASSERT_EQ(route.size(), 2u);
  EXPECT_EQ(route[0], t.node_up_link(t.node_id(3, 0)));
  EXPECT_EQ(route[1], t.node_down_link(t.node_id(3, 2)));
}

TEST(DmodK, SameTreeUsesOneL2) {
  const FatTree t(4, 4, 4);
  const NodeId src = t.node_id(t.leaf_id(1, 0), 0);
  const NodeId dst = t.node_id(t.leaf_id(1, 2), 1);
  const auto route = dmodk_route(t, src, dst);
  ASSERT_EQ(route.size(), 4u);
  const int i = dst % t.l2_per_tree();
  EXPECT_EQ(route[1], t.leaf_up_link(t.leaf_of_node(src), i));
  EXPECT_EQ(route[2], t.leaf_down_link(t.leaf_of_node(dst), i));
}

TEST(DmodK, CrossTreeUsesSpine) {
  const FatTree t(4, 4, 4);
  const NodeId src = t.node_id(t.leaf_id(0, 0), 0);
  const NodeId dst = t.node_id(t.leaf_id(3, 1), 2);
  const auto route = dmodk_route(t, src, dst);
  ASSERT_EQ(route.size(), 6u);
  const int i = dst % t.l2_per_tree();
  const int j = (dst / t.l2_per_tree()) % t.spines_per_group();
  EXPECT_EQ(route[2], t.l2_up_link(0, i, j));
  EXPECT_EQ(route[3], t.l2_down_link(3, i, j));
}

TEST(DmodK, OutOfRangeThrows) {
  const FatTree t(4, 4, 4);
  EXPECT_THROW(dmodk_route(t, -1, 0), std::invalid_argument);
  EXPECT_THROW(dmodk_route(t, 0, t.total_nodes()), std::invalid_argument);
}

TEST(DmodK, ShiftPermutationIsContentionFreeAcrossLeaves) {
  // The property D-mod-k was designed for (Zahavi): a shift permutation
  // dst = (src + m1) mod N — every node sends one leaf over — routes with
  // at most one flow per link on the full tree.
  const FatTree t(4, 4, 4);
  std::map<int, int> load;
  for (NodeId src = 0; src < t.total_nodes(); ++src) {
    const NodeId dst = (src + t.nodes_per_leaf()) % t.total_nodes();
    for (const int link : dmodk_route(t, src, dst)) {
      EXPECT_LE(++load[link], 1) << t.link_name(link);
    }
  }
}

TEST(DmodK, DeterministicRoutes) {
  const FatTree t(8, 8, 16);
  EXPECT_EQ(dmodk_route(t, 17, 901), dmodk_route(t, 17, 901));
}

}  // namespace
}  // namespace jigsaw
