#!/usr/bin/env bash
# Crash-recovery smoke test for the online scheduler service.
#
# Runs the same trace twice through jigsaw_daemon in virtual-clock mode:
# once uninterrupted (the reference), once with the daemon killed -9 in
# the middle of the drain and restarted with --recover. Asserts that
#
#   1. the restarted daemon reports a successful recovery audit and that
#      the interrupted drain resumed to completion, and
#   2. the recovered run's final SimMetrics are bit-identical to the
#      reference (excluding the wall-clock scheduling-time fields, which
#      no two runs reproduce).
#
# Usage: scripts/service_smoke.sh [BUILD_DIR]   (default: build)

set -euo pipefail

BUILD_DIR="${1:-build}"
DAEMON="$BUILD_DIR/examples/jigsaw_daemon"
CLIENT="$BUILD_DIR/examples/jigsaw_client"
JOBS="${JOBS:-300}"

for bin in "$DAEMON" "$CLIENT"; do
  [ -x "$bin" ] || { echo "missing binary: $bin" >&2; exit 1; }
done

WORK="$(mktemp -d "${TMPDIR:-/tmp}/jigsaw_smoke.XXXXXX")"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SOCK="$WORK/jigsaw.sock"

start_daemon() {  # start_daemon [extra flags...]
  "$DAEMON" --listen "unix:$SOCK" "$@" 2> "$WORK/daemon.log" &
  DAEMON_PID=$!
  # Wait until the socket answers (the daemon prints "listening on ..."
  # before entering the reactor, but ping is the real readiness signal).
  for _ in $(seq 1 100); do
    if "$CLIENT" --connect "unix:$SOCK" --op ping > /dev/null 2>&1; then
      return 0
    fi
    kill -0 "$DAEMON_PID" 2>/dev/null || {
      echo "daemon died during startup:" >&2
      cat "$WORK/daemon.log" >&2
      exit 1
    }
    sleep 0.1
  done
  echo "daemon never became ready" >&2
  exit 1
}

stop_daemon() {
  "$CLIENT" --connect "unix:$SOCK" --op shutdown > /dev/null
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=""
}

# ---- 1. reference: uninterrupted run ----------------------------------------
echo "== reference run ($JOBS jobs) =="
start_daemon
"$CLIENT" --connect "unix:$SOCK" --op submit-trace --jobs "$JOBS" > /dev/null
"$CLIENT" --connect "unix:$SOCK" --op drain > "$WORK/reference_drain.json"
stop_daemon

# ---- 2. crash run: kill -9 mid-drain ----------------------------------------
echo "== crash run: kill -9 mid-drain =="
# step-delay widens the drain so the kill reliably lands inside it.
start_daemon --wal "$WORK/run.wal" --wal-sync always --step-delay-us 2000
"$CLIENT" --connect "unix:$SOCK" --op submit-trace --jobs "$JOBS" > /dev/null
"$CLIENT" --connect "unix:$SOCK" --op drain > /dev/null 2>&1 &
DRAIN_PID=$!
sleep 0.7
if ! kill -0 "$DRAIN_PID" 2>/dev/null; then
  echo "warning: drain finished before the kill; recovery still exercised" >&2
fi
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
wait "$DRAIN_PID" 2>/dev/null || true
[ -s "$WORK/run.wal" ] || { echo "crash run left no WAL" >&2; exit 1; }

# ---- 3. restart with --recover ----------------------------------------------
echo "== recovery run =="
start_daemon --wal "$WORK/run.wal" --wal-sync always --recover
grep -q "recovered WAL" "$WORK/daemon.log" || {
  echo "daemon did not report a recovery:" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
}
grep -q "drain resumed to completion" "$WORK/daemon.log" || {
  echo "recovery did not resume the interrupted drain:" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
}
"$CLIENT" --connect "unix:$SOCK" --op stats > "$WORK/stats.json"
grep -q '"recovery_audit_ok":true' "$WORK/stats.json" || {
  echo "recovery audit failed:" >&2
  cat "$WORK/stats.json" >&2
  exit 1
}
# drain on a recovered (already drained) daemon returns the cached metrics.
"$CLIENT" --connect "unix:$SOCK" --op drain > "$WORK/recovered_drain.json"
stop_daemon

# ---- 4. metrics must match bit for bit --------------------------------------
python3 - "$WORK/reference_drain.json" "$WORK/recovered_drain.json" <<'EOF'
import json, sys

WALL_FIELDS = {"sched_wall_seconds", "mean_sched_time_per_job"}

def metrics(path):
    with open(path) as f:
        doc = json.loads(f.read().splitlines()[-1])
    assert doc.get("ok") is True, f"{path}: drain not ok: {doc}"
    return {k: v for k, v in doc["metrics"].items() if k not in WALL_FIELDS}

ref, rec = metrics(sys.argv[1]), metrics(sys.argv[2])
diff = {k for k in ref.keys() | rec.keys() if ref.get(k) != rec.get(k)}
assert not diff, f"metrics diverge after recovery: {sorted(diff)}"
print(f"recovered metrics bit-identical to reference "
      f"({len(ref)} fields compared)")
EOF

echo "service smoke: PASS"
