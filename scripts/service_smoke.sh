#!/usr/bin/env bash
# Crash-recovery smoke test for the online scheduler service.
#
# Runs the same trace twice through jigsaw_daemon in virtual-clock mode:
# once uninterrupted (the reference), once with the daemon killed -9 in
# the middle of the drain and restarted with --recover. Asserts that
#
#   1. the restarted daemon reports a successful recovery audit and that
#      the interrupted drain resumed to completion, and
#   2. the recovered run's final SimMetrics are bit-identical to the
#      reference (excluding the wall-clock scheduling-time fields, which
#      no two runs reproduce).
#
# Then exercises the live observability plane:
#
#   3. a --metrics daemon is scraped over HTTP (GET /metrics on the same
#      unix listener) in the middle of a live drain; the reply must be
#      valid Prometheus text exposition (format-checked line by line,
#      histogram bucket monotonicity included), and
#   4. a daemon started WITHOUT --metrics must refuse the metrics op
#      (bad_state), answer the HTTP scrape with 503, and report
#      "obs_enabled":false in stats — the disabled hot loop does no
#      observability work.
#
# Then the snapshot and sharding subsystems:
#
#   5. a --snapshot-every daemon is killed -9 mid-drain after at least
#      one WAL compaction; the restart restores the snapshot, replays
#      only the post-snapshot tail (O(tail), asserted against the input
#      count), and drains to metrics bit-identical to the reference, and
#   6. a --clusters 2 --shards 2 daemon routes per-cluster submits,
#      rejects unknown cluster ids, aggregates stats/drain across the
#      clusters (the two drains must be bit-identical to each other:
#      same trace, independent engines), and serves one merged /metrics
#      exposition with a cluster label on every sample.
#
# Usage: scripts/service_smoke.sh [BUILD_DIR]   (default: build)

set -euo pipefail

BUILD_DIR="${1:-build}"
DAEMON="$BUILD_DIR/examples/jigsaw_daemon"
CLIENT="$BUILD_DIR/examples/jigsaw_client"
JOBS="${JOBS:-300}"

for bin in "$DAEMON" "$CLIENT"; do
  [ -x "$bin" ] || { echo "missing binary: $bin" >&2; exit 1; }
done

WORK="$(mktemp -d "${TMPDIR:-/tmp}/jigsaw_smoke.XXXXXX")"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SOCK="$WORK/jigsaw.sock"

start_daemon() {  # start_daemon [extra flags...]
  "$DAEMON" --listen "unix:$SOCK" "$@" 2> "$WORK/daemon.log" &
  DAEMON_PID=$!
  # Wait until the socket answers (the daemon prints "listening on ..."
  # before entering the reactor, but ping is the real readiness signal).
  for _ in $(seq 1 100); do
    if "$CLIENT" --connect "unix:$SOCK" --op ping > /dev/null 2>&1; then
      return 0
    fi
    kill -0 "$DAEMON_PID" 2>/dev/null || {
      echo "daemon died during startup:" >&2
      cat "$WORK/daemon.log" >&2
      exit 1
    }
    sleep 0.1
  done
  echo "daemon never became ready" >&2
  exit 1
}

stop_daemon() {
  "$CLIENT" --connect "unix:$SOCK" --op shutdown > /dev/null
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=""
}

# ---- 1. reference: uninterrupted run ----------------------------------------
echo "== reference run ($JOBS jobs) =="
start_daemon
"$CLIENT" --connect "unix:$SOCK" --op submit-trace --jobs "$JOBS" > /dev/null
"$CLIENT" --connect "unix:$SOCK" --op drain > "$WORK/reference_drain.json"
stop_daemon

# ---- 2. crash run: kill -9 mid-drain ----------------------------------------
echo "== crash run: kill -9 mid-drain =="
# step-delay widens the drain so the kill reliably lands inside it.
start_daemon --wal "$WORK/run.wal" --wal-sync always --step-delay-us 2000
"$CLIENT" --connect "unix:$SOCK" --op submit-trace --jobs "$JOBS" > /dev/null
"$CLIENT" --connect "unix:$SOCK" --op drain > /dev/null 2>&1 &
DRAIN_PID=$!
sleep 0.7
if ! kill -0 "$DRAIN_PID" 2>/dev/null; then
  echo "warning: drain finished before the kill; recovery still exercised" >&2
fi
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
wait "$DRAIN_PID" 2>/dev/null || true
[ -s "$WORK/run.wal" ] || { echo "crash run left no WAL" >&2; exit 1; }

# ---- 3. restart with --recover ----------------------------------------------
echo "== recovery run =="
start_daemon --wal "$WORK/run.wal" --wal-sync always --recover
grep -q "recovered WAL" "$WORK/daemon.log" || {
  echo "daemon did not report a recovery:" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
}
grep -q "drain resumed to completion" "$WORK/daemon.log" || {
  echo "recovery did not resume the interrupted drain:" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
}
"$CLIENT" --connect "unix:$SOCK" --op stats > "$WORK/stats.json"
grep -q '"recovery_audit_ok":true' "$WORK/stats.json" || {
  echo "recovery audit failed:" >&2
  cat "$WORK/stats.json" >&2
  exit 1
}
# drain on a recovered (already drained) daemon returns the cached metrics.
"$CLIENT" --connect "unix:$SOCK" --op drain > "$WORK/recovered_drain.json"
stop_daemon

# ---- 4. metrics must match bit for bit --------------------------------------
python3 - "$WORK/reference_drain.json" "$WORK/recovered_drain.json" <<'EOF'
import json, sys

WALL_FIELDS = {"sched_wall_seconds", "mean_sched_time_per_job"}

def metrics(path):
    with open(path) as f:
        doc = json.loads(f.read().splitlines()[-1])
    assert doc.get("ok") is True, f"{path}: drain not ok: {doc}"
    return {k: v for k, v in doc["metrics"].items() if k not in WALL_FIELDS}

ref, rec = metrics(sys.argv[1]), metrics(sys.argv[2])
diff = {k for k in ref.keys() | rec.keys() if ref.get(k) != rec.get(k)}
assert not diff, f"metrics diverge after recovery: {sorted(diff)}"
print(f"recovered metrics bit-identical to reference "
      f"({len(ref)} fields compared)")
EOF

# ---- 5. live metrics scrape mid-drain ---------------------------------------
echo "== live metrics scrape mid-drain =="
rm -f "$SOCK"
# step-delay widens the drain so the scrape reliably lands inside it.
start_daemon --metrics --step-delay-us 2000
"$CLIENT" --connect "unix:$SOCK" --op submit-trace --jobs "$JOBS" > /dev/null
"$CLIENT" --connect "unix:$SOCK" --op drain > /dev/null 2>&1 &
DRAIN_PID=$!
sleep 0.3
if ! kill -0 "$DRAIN_PID" 2>/dev/null; then
  echo "warning: drain finished before the scrape; endpoint still exercised" >&2
fi
# HTTP on the protocol listener. curl when available, python fallback.
if command -v curl > /dev/null 2>&1; then
  curl -sf --max-time 10 --unix-socket "$SOCK" http://localhost/metrics \
    > "$WORK/scrape.txt"
else
  python3 - "$SOCK" > "$WORK/scrape.txt" <<'EOF'
import socket, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.settimeout(10)
s.connect(sys.argv[1])
s.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
data = b""
while chunk := s.recv(65536):
    data += chunk
head, _, body = data.partition(b"\r\n\r\n")
status = head.split(b"\r\n", 1)[0]
assert b" 200 " in status, f"scrape failed: {status!r}"
sys.stdout.write(body.decode())
EOF
fi
wait "$DRAIN_PID" 2>/dev/null || true
python3 - "$WORK/scrape.txt" <<'EOF'
import re, sys
from collections import defaultdict

text = open(sys.argv[1]).read()
assert text.endswith("\n"), "exposition must end with a newline"
sample_re = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.eE+-]+|[+-]?Inf|NaN)$")
types, samples, buckets = {}, [], defaultdict(list)
for line in text.splitlines():
    if not line:
        continue
    if line.startswith("#"):
        m = re.match(r"^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*) ", line)
        assert m, f"malformed comment line: {line!r}"
        if m.group(1) == "TYPE":
            types[m.group(2)] = line.split()[-1]
        continue
    m = sample_re.match(line)
    assert m, f"malformed sample line: {line!r}"
    name, labels, value = m.groups()
    samples.append(name)
    if name.endswith("_bucket"):
        le = re.search(r'le="([^"]*)"', labels or "")
        assert le, f"_bucket without le label: {line!r}"
        buckets[name[:-len("_bucket")]].append(
            (float("inf") if le.group(1) == "+Inf" else float(le.group(1)),
             float(value)))
assert samples, "no samples in the scrape"
for required in ("jigsaw_cluster_utilization", "jigsaw_queue_depth",
                 "jigsaw_jobs_running", "jigsaw_frag_free_nodes",
                 "jigsaw_service_ack_seconds_count"):
    assert required in samples, f"missing expected series: {required}"
assert any(t == "histogram" for t in types.values()), "no histogram TYPE"
for base, series in buckets.items():
    series.sort()
    counts = [c for _, c in series]
    assert counts == sorted(counts), f"{base}: buckets not cumulative"
    assert series[-1][0] == float("inf"), f"{base}: missing +Inf bucket"
print(f"valid Prometheus exposition: {len(samples)} samples, "
      f"{len(buckets)} histograms")
EOF
# The metrics op returns the same exposition through the line protocol.
"$CLIENT" --connect "unix:$SOCK" --op metrics > "$WORK/metrics_op.json"
grep -q '"format":"prometheus"' "$WORK/metrics_op.json" || {
  echo "metrics op did not return prometheus payload:" >&2
  cat "$WORK/metrics_op.json" >&2
  exit 1
}
stop_daemon

# ---- 6. disabled observability must stay disabled ---------------------------
echo "== disabled-obs daemon =="
rm -f "$SOCK"
start_daemon
"$CLIENT" --connect "unix:$SOCK" --op stats > "$WORK/noobs_stats.json"
grep -q '"obs_enabled":false' "$WORK/noobs_stats.json" || {
  echo "disabled-obs daemon did not report obs_enabled:false:" >&2
  cat "$WORK/noobs_stats.json" >&2
  exit 1
}
if "$CLIENT" --connect "unix:$SOCK" --op metrics > "$WORK/noobs_metrics.json" \
    2>/dev/null; then
  echo "metrics op unexpectedly succeeded without --metrics" >&2
  exit 1
fi
grep -q '"error":"bad_state"' "$WORK/noobs_metrics.json" || {
  echo "metrics op without --metrics did not return bad_state:" >&2
  cat "$WORK/noobs_metrics.json" >&2
  exit 1
}
python3 - "$SOCK" <<'EOF'
import socket, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.settimeout(10)
s.connect(sys.argv[1])
s.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
data = b""
while chunk := s.recv(65536):
    data += chunk
status = data.split(b"\r\n", 1)[0]
assert b" 503 " in status, f"expected 503 without --metrics, got {status!r}"
print("HTTP scrape correctly answers 503 without --metrics")
EOF
stop_daemon

# ---- 7. snapshot compaction: kill -9 after a compaction, O(tail) recovery ---
echo "== snapshot run: kill -9 mid-drain after compaction =="
rm -f "$SOCK"
# Cadence well below the job count so at least one compaction happens
# before the drain; step-delay widens the drain for a reliable kill.
start_daemon --wal "$WORK/snap.wal" --wal-sync always --snapshot-every 100 \
  --step-delay-us 2000
"$CLIENT" --connect "unix:$SOCK" --op submit-trace --jobs "$JOBS" > /dev/null
"$CLIENT" --connect "unix:$SOCK" --op stats > "$WORK/snap_stats.json"
grep -q '"snapshots":0' "$WORK/snap_stats.json" && {
  echo "no compaction happened before the crash:" >&2
  cat "$WORK/snap_stats.json" >&2
  exit 1
}
"$CLIENT" --connect "unix:$SOCK" --op drain > /dev/null 2>&1 &
DRAIN_PID=$!
sleep 0.7
if ! kill -0 "$DRAIN_PID" 2>/dev/null; then
  echo "warning: drain finished before the kill; recovery still exercised" >&2
fi
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
wait "$DRAIN_PID" 2>/dev/null || true
[ -s "$WORK/snap.wal" ] || { echo "snapshot run left no WAL" >&2; exit 1; }

start_daemon --wal "$WORK/snap.wal" --wal-sync always --snapshot-every 100 \
  --recover
grep -q "snapshot epoch" "$WORK/daemon.log" || {
  echo "recovery did not restore from a snapshot:" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
}
"$CLIENT" --connect "unix:$SOCK" --op stats > "$WORK/snap_recover_stats.json"
python3 - "$WORK/snap_recover_stats.json" "$JOBS" <<'EOF'
import json, sys
doc = json.loads(open(sys.argv[1]).read().splitlines()[-1])
doc = doc.get("stats", doc)
jobs = int(sys.argv[2])
assert doc.get("recovery_audit_ok") is True, f"audit failed: {doc}"
assert doc.get("recovery_used_snapshot") is True, \
    f"recovery ignored the snapshot: {doc}"
assert doc.get("recovery_snapshot_fallback") is False, \
    f"unexpected fallback: {doc}"
# O(tail): only the inputs logged after the last compaction replay. The
# cadence is 100, so the tail holds < 100 inputs + the drain marker —
# never the whole history.
replayed = doc["recovery_inputs_replayed"]
assert replayed <= 101, f"tail replay too large: {replayed} of {jobs}"
print(f"snapshot recovery replayed {replayed} tail inputs "
      f"(of {jobs + 1} logged), epoch {doc['recovery_snapshot_epoch']}")
EOF
"$CLIENT" --connect "unix:$SOCK" --op drain > "$WORK/snap_drain.json"
stop_daemon
python3 - "$WORK/reference_drain.json" "$WORK/snap_drain.json" <<'EOF'
import json, sys

WALL_FIELDS = {"sched_wall_seconds", "mean_sched_time_per_job"}

def metrics(path):
    with open(path) as f:
        doc = json.loads(f.read().splitlines()[-1])
    assert doc.get("ok") is True, f"{path}: drain not ok: {doc}"
    return {k: v for k, v in doc["metrics"].items() if k not in WALL_FIELDS}

ref, rec = metrics(sys.argv[1]), metrics(sys.argv[2])
diff = {k for k in ref.keys() | rec.keys() if ref.get(k) != rec.get(k)}
assert not diff, f"metrics diverge after snapshot recovery: {sorted(diff)}"
print(f"snapshot-recovered metrics bit-identical to reference "
      f"({len(ref)} fields compared)")
EOF

# ---- 8. sharded daemon: 2 clusters x 2 shards -------------------------------
echo "== sharded daemon: 2 clusters x 2 shards =="
rm -f "$SOCK"
start_daemon --clusters 2 --shards 2 --metrics
"$CLIENT" --connect "unix:$SOCK" --timeout 30 --op ping \
  > "$WORK/shard_ping.json"
grep -q '"clusters":2' "$WORK/shard_ping.json" || {
  echo "sharded ping does not report clusters:" >&2
  cat "$WORK/shard_ping.json" >&2
  exit 1
}
grep -q '"shards":2' "$WORK/shard_ping.json" || {
  echo "sharded ping does not report shards:" >&2
  cat "$WORK/shard_ping.json" >&2
  exit 1
}
# The same trace into both clusters: independent engines, so the two
# drains below must agree bit for bit. --timeout exercises the bounded
# client path against a healthy daemon.
SHARD_JOBS=$(( JOBS / 3 ))
for c in 0 1; do
  "$CLIENT" --connect "unix:$SOCK" --timeout 30 --cluster "$c" \
    --op submit-trace --jobs "$SHARD_JOBS" > /dev/null
done
if "$CLIENT" --connect "unix:$SOCK" --timeout 30 --cluster 7 --op ping \
    > "$WORK/shard_bad.json" 2>/dev/null; then
  echo "unknown cluster id was not rejected" >&2
  exit 1
fi
grep -q "unknown cluster 7" "$WORK/shard_bad.json" || {
  echo "unknown-cluster error lacks the cluster id:" >&2
  cat "$WORK/shard_bad.json" >&2
  exit 1
}
"$CLIENT" --connect "unix:$SOCK" --timeout 30 --op stats \
  > "$WORK/shard_stats.json"
grep -q "\"submitted\":$(( SHARD_JOBS * 2 ))" "$WORK/shard_stats.json" || {
  echo "aggregate stats did not sum both clusters:" >&2
  cat "$WORK/shard_stats.json" >&2
  exit 1
}
grep -q '"per_cluster":\[' "$WORK/shard_stats.json" || {
  echo "aggregate stats lack the per_cluster array:" >&2
  cat "$WORK/shard_stats.json" >&2
  exit 1
}
"$CLIENT" --connect "unix:$SOCK" --timeout 60 --op drain \
  > "$WORK/shard_drain.json"
python3 - "$WORK/shard_drain.json" <<'EOF'
import json, sys

WALL_FIELDS = {"sched_wall_seconds", "mean_sched_time_per_job"}
doc = json.loads(open(sys.argv[1]).read().splitlines()[-1])
assert doc.get("ok") is True, f"sharded drain not ok: {doc}"
parts = doc["metrics"]
assert len(parts) == 2, f"expected 2 per-cluster metrics, got {len(parts)}"
a, b = ({k: v for k, v in p.items() if k not in WALL_FIELDS} for p in parts)
diff = {k for k in a.keys() | b.keys() if a.get(k) != b.get(k)}
assert not diff, f"identical traces drained differently: {sorted(diff)}"
print(f"sharded drain: both clusters bit-identical "
      f"({len(a)} fields compared)")
EOF
python3 - "$SOCK" <<'EOF'
import re, socket, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.settimeout(10)
s.connect(sys.argv[1])
s.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
data = b""
while chunk := s.recv(65536):
    data += chunk
head, _, body = data.partition(b"\r\n\r\n")
status = head.split(b"\r\n", 1)[0]
assert b" 200 " in status, f"sharded scrape failed: {status!r}"
clusters = set()
samples = 0
for line in body.decode().splitlines():
    if not line or line.startswith("#"):
        continue
    samples += 1
    m = re.search(r'cluster="(\d+)"', line)
    assert m, f"sample without a cluster label: {line!r}"
    clusters.add(m.group(1))
assert samples > 0, "no samples in the sharded scrape"
assert clusters == {"0", "1"}, f"expected clusters 0 and 1, got {clusters}"
print(f"sharded /metrics: {samples} samples, every one cluster-labelled")
EOF
stop_daemon

# ---- 9. defrag daemon: kill -9 mid-migration, recovery drains cleanly -------
echo "== defrag run: migration under crash recovery =="
# The hand-crafted stall workload from tests/test_defrag.cpp, scaled to
# the radix-8 tree (FatTree(4,4,8), 128 nodes): two leaf-sharing 2-node
# pairs in tree 0, seven whole-tree fillers in trees 1-7. After the two
# 100 s leaf-mates finish, the 12-node head sees 12 free nodes but only
# two fully-free leaves -- blocked on leaf_spread until the defrag
# engine migrates one 2-node job; the drain must report exactly one
# migration.
submit_defrag_workload() {
  local c="$CLIENT --connect unix:$SOCK --timeout 30"
  $c --op submit --id 1 --arrival 0 --nodes 2 --runtime 100 > /dev/null
  $c --op submit --id 2 --arrival 0 --nodes 2 --runtime 10000 > /dev/null
  $c --op submit --id 3 --arrival 0 --nodes 2 --runtime 100 > /dev/null
  $c --op submit --id 4 --arrival 0 --nodes 2 --runtime 10000 > /dev/null
  local id
  for id in 5 6 7 8 9 10 11; do
    $c --op submit --id "$id" --arrival 0 --nodes 16 --runtime 10000 > /dev/null
  done
  $c --op submit --id 12 --arrival 10 --nodes 12 --runtime 50 > /dev/null
}
rm -f "$SOCK"
start_daemon --radix 8 --defrag --migration-cost 40
submit_defrag_workload
"$CLIENT" --connect "unix:$SOCK" --op drain > "$WORK/defrag_reference.json"
grep -q '"migrations":1' "$WORK/defrag_reference.json" || {
  echo "defrag reference run performed no migration:" >&2
  cat "$WORK/defrag_reference.json" >&2
  exit 1
}
grep -q '"head_unblocks":1' "$WORK/defrag_reference.json" || {
  echo "defrag reference run did not unblock the head:" >&2
  cat "$WORK/defrag_reference.json" >&2
  exit 1
}
stop_daemon

rm -f "$SOCK"
# The step delay stretches the ~10-step drain to ~1.5 s of wall time so
# the kill lands around the migration steps (t=100 in simulated time).
start_daemon --radix 8 --defrag --migration-cost 40 \
  --wal "$WORK/defrag.wal" --wal-sync always --step-delay-us 150000
submit_defrag_workload
"$CLIENT" --connect "unix:$SOCK" --op drain > /dev/null 2>&1 &
DRAIN_PID=$!
sleep 0.65
if ! kill -0 "$DRAIN_PID" 2>/dev/null; then
  echo "warning: defrag drain finished before the kill; recovery still exercised" >&2
fi
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
wait "$DRAIN_PID" 2>/dev/null || true
[ -s "$WORK/defrag.wal" ] || { echo "defrag crash run left no WAL" >&2; exit 1; }

start_daemon --radix 8 --defrag --migration-cost 40 \
  --wal "$WORK/defrag.wal" --wal-sync always --recover
grep -q "recovered WAL" "$WORK/daemon.log" || {
  echo "defrag daemon did not report a recovery:" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
}
"$CLIENT" --connect "unix:$SOCK" --op stats > "$WORK/defrag_stats.json"
grep -q '"recovery_audit_ok":true' "$WORK/defrag_stats.json" || {
  echo "defrag recovery audit failed (migration grants must replay):" >&2
  cat "$WORK/defrag_stats.json" >&2
  exit 1
}
"$CLIENT" --connect "unix:$SOCK" --op drain > "$WORK/defrag_drain.json"
stop_daemon
python3 - "$WORK/defrag_reference.json" "$WORK/defrag_drain.json" <<'EOF'
import json, sys

WALL_FIELDS = {"sched_wall_seconds", "mean_sched_time_per_job"}

def metrics(path):
    with open(path) as f:
        doc = json.loads(f.read().splitlines()[-1])
    assert doc.get("ok") is True, f"{path}: drain not ok: {doc}"
    return {k: v for k, v in doc["metrics"].items() if k not in WALL_FIELDS}

ref, rec = metrics(sys.argv[1]), metrics(sys.argv[2])
assert ref["migrations"] == 1, f"reference lost its migration: {ref}"
diff = {k for k in ref.keys() | rec.keys() if ref.get(k) != rec.get(k)}
assert not diff, f"metrics diverge after defrag recovery: {sorted(diff)}"
print(f"defrag recovery: migration replayed, metrics bit-identical "
      f"({len(ref)} fields compared)")
EOF

echo "service smoke: PASS"
