#!/usr/bin/env python3
"""Gate a bench_alloc_deadline JSON against the anytime-search contract.

For every (Scheme, Trace) pair in the file the sweep must contain the
exhaustive reference row (deadline_us == "inf") and the gate row
(deadline_us == GATE_DEADLINE_US, default 100). Two checks:

  * latency: the gate row's allocate() p99 must stay within
    P99_FACTOR x the deadline (default 1.2 — the cooperative expiry
    check runs every 1024 search steps and between candidate probes,
    so the overrun is bounded by one probe, not one pass).
  * quality (Jigsaw rows only, the scheme the acceptance criterion
    names): steady-state utilization on the gate row must stay within
    UTIL_PP percentage points (default 1.0) of the exhaustive row —
    the quality-descending probe order means cutting the scan tail
    costs latency, not placements.

Rows at other deadlines are printed for the frontier but not gated:
a 25 us deadline legitimately trades more utilization away.

Usage: check_deadline_regression.py RESULTS.json \
           [P99_FACTOR] [UTIL_PP] [GATE_DEADLINE_US]
"""

import json
import sys


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = doc.get("rows", [])
    if not rows:
        sys.exit(f"{path}: no rows")
    for row in rows:
        for key in ("Scheme", "Trace", "deadline_us", "p99_alloc_us",
                    "util_pct"):
            if key not in row:
                sys.exit(f"{path}: row missing '{key}': {row}")
    return rows


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    path = sys.argv[1]
    p99_factor = float(sys.argv[2]) if len(sys.argv) > 2 else 1.2
    util_pp = float(sys.argv[3]) if len(sys.argv) > 3 else 1.0
    gate_us = float(sys.argv[4]) if len(sys.argv) > 4 else 100.0

    rows = load_rows(path)
    groups = {}
    for row in rows:
        groups.setdefault((row["Scheme"], row["Trace"]), []).append(row)

    failures = []
    print(f"{'scheme':<8} {'trace':<10} {'deadline':>9} {'p99_us':>9} "
          f"{'util_pct':>9}  verdict")
    for (scheme, trace), group in sorted(groups.items()):
        inf_row = next((r for r in group if r["deadline_us"] == "inf"),
                       None)
        if inf_row is None:
            failures.append(f"{scheme}/{trace}: no exhaustive (inf) row")
            continue
        gate_row = next(
            (r for r in group
             if r["deadline_us"] != "inf"
             and float(r["deadline_us"]) == gate_us), None)
        if gate_row is None:
            failures.append(
                f"{scheme}/{trace}: no {gate_us:g} us gate row")
            continue
        for row in group:
            verdict = []
            if row is gate_row:
                p99 = float(row["p99_alloc_us"])
                if p99 > p99_factor * gate_us:
                    verdict.append("P99-REGRESSED")
                    failures.append(
                        f"{scheme}/{trace}: p99 {p99:.1f} us > "
                        f"{p99_factor:g} x {gate_us:g} us deadline")
                if scheme == "Jigsaw":
                    lost = (float(inf_row["util_pct"]) -
                            float(row["util_pct"]))
                    if lost > util_pp:
                        verdict.append("UTIL-REGRESSED")
                        failures.append(
                            f"{scheme}/{trace}: utilization lost "
                            f"{lost:.2f} pp > {util_pp:g} pp vs "
                            f"exhaustive")
                if not verdict:
                    verdict.append("ok (gated)")
            else:
                verdict.append("-")
            print(f"{scheme:<8} {trace:<10} {row['deadline_us']:>9} "
                  f"{float(row['p99_alloc_us']):>9.1f} "
                  f"{float(row['util_pct']):>9.2f}  "
                  f"{' '.join(verdict)}")

    if failures:
        print()
        for f in failures:
            print(f"FAIL: {f}")
        sys.exit(1)
    print(f"\nok: p99 within {p99_factor:g}x the {gate_us:g} us deadline, "
          f"Jigsaw utilization within {util_pp:g} pp of exhaustive")


if __name__ == "__main__":
    main()
