#!/usr/bin/env bash
# Regenerate the committed scheduling-time baseline (BENCH_schedtime.json).
#
# Runs bench_table3_schedtime on Synth-16 with --repeat 5 so the baseline
# carries a mean and a sample-stddev column per scheme, then rewrites the
# checked-in BENCH_schedtime.json at the repo root. CI's perf-smoke job
# compares a fresh run against this file with
# scripts/check_schedtime_regression.py and fails on a >25% mean
# regression for any scheme.
#
# Regenerate (and commit the result) whenever the allocator hot path
# changes on purpose, on a quiet machine:
#
#   cmake --preset default && cmake --build --preset default -j
#   scripts/bench_baseline.sh
#
# Usage: scripts/bench_baseline.sh [BUILD_DIR]   (default: build)

set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCH="$BUILD_DIR/bench/bench_table3_schedtime"

if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not found or not executable; build first:" >&2
  echo "  cmake --preset default && cmake --build --preset default -j" >&2
  exit 1
fi

"$BENCH" --traces Synth-16 --repeat 5 \
  --json-out "$REPO_ROOT/BENCH_schedtime.json"
echo "wrote $REPO_ROOT/BENCH_schedtime.json"
