#!/usr/bin/env bash
# Regenerate the committed perf baselines (BENCH_schedtime.json,
# BENCH_service_load.json, and BENCH_alloc_deadline.json).
#
# Runs bench_table3_schedtime on Synth-16 and the production-radix
# Synth-48 (27648 nodes) with --repeat 5 so the baseline carries a mean
# and a sample-stddev column per scheme and trace, then rewrites the
# checked-in BENCH_schedtime.json at the repo root. The run installs the
# build's precomputed shape tables (JIGSAW_SHAPE_TABLE) — the shipping
# configuration — so the baseline measures the table-serving path. CI's
# perf-smoke job compares a fresh run against this file with
# scripts/check_schedtime_regression.py and fails on a >25% mean
# regression for any scheme on any trace (missing cells are errors).
#
# Then runs bench_service_load in its 8-shard in-process mode and
# rewrites BENCH_service_load.json; CI compares a fresh run with
# scripts/check_service_load_regression.py (50% tolerance — end-to-end
# service throughput is noisier than the allocator microbenches).
#
# Finally runs bench_alloc_deadline's Synth-48 deadline sweep (v2 ranked
# shape tables installed) and rewrites BENCH_alloc_deadline.json; the
# committed file must satisfy scripts/check_deadline_regression.py at
# its strict defaults (allocate() p99 within 1.2x the 100 us deadline,
# Jigsaw utilization within 1 pp of the exhaustive row) — CI re-checks
# both the committed file and a fresh run (looser p99 factor there: the
# shared runners' wall clocks are noisy).
#
# Regenerate (and commit the result) whenever the allocator hot path or
# the service stack changes on purpose, on a quiet machine:
#
#   cmake --preset default && cmake --build --preset default -j
#   scripts/bench_baseline.sh
#
# Usage: scripts/bench_baseline.sh [BUILD_DIR]   (default: build)

set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCH="$BUILD_DIR/bench/bench_table3_schedtime"
LOAD_BENCH="$BUILD_DIR/bench/bench_service_load"
DEADLINE_BENCH="$BUILD_DIR/bench/bench_alloc_deadline"

for bin in "$BENCH" "$LOAD_BENCH" "$DEADLINE_BENCH"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not found or not executable; build first:" >&2
    echo "  cmake --preset default && cmake --build --preset default -j" >&2
    exit 1
  fi
done

for table in "$BUILD_DIR/shape_tables/k16.jst" "$BUILD_DIR/shape_tables/k48.jst"; do
  if [ ! -f "$table" ]; then
    echo "error: $table not found; build the shape_tables target first" >&2
    exit 1
  fi
done

JIGSAW_SHAPE_TABLE="$BUILD_DIR/shape_tables/k16.jst:$BUILD_DIR/shape_tables/k48.jst" \
  "$BENCH" --traces Synth-16,Synth-48 --repeat 5 \
  --json-out "$REPO_ROOT/BENCH_schedtime.json"
echo "wrote $REPO_ROOT/BENCH_schedtime.json"

"$LOAD_BENCH" --shards 8 --jobs 24000 --drain \
  --json-out "$REPO_ROOT/BENCH_service_load.json"
echo "wrote $REPO_ROOT/BENCH_service_load.json"

JIGSAW_SHAPE_TABLE="$BUILD_DIR/shape_tables/k48.jst" \
  "$DEADLINE_BENCH" --traces Synth-48 --schemes jigsaw --repeat 3 \
  --json-out "$REPO_ROOT/BENCH_alloc_deadline.json"
echo "wrote $REPO_ROOT/BENCH_alloc_deadline.json"
python3 "$REPO_ROOT/scripts/check_deadline_regression.py" \
  "$REPO_ROOT/BENCH_alloc_deadline.json"
