#!/usr/bin/env bash
# Headline defragmentation experiment: the fig6 utilization bench with
# live migration off and on across a migration-cost sweep, on the Atlas
# production trace and the Synth-48 production-radix companion.
#
#   ./scripts/defrag_sweep.sh [build-dir] [out.json]
#
# Environment knobs: ATLAS_JOBS (default 3000), SYNTH_JOBS (default
# 2000), COSTS (default "30 60 120 240" simulated seconds).
#
# The merged artifact records every bench cell plus a headline section:
# the Jigsaw utilization delta (defrag on minus off) per trace per cost,
# with each cost expressed as a fraction of the trace's mean job
# runtime. The script fails unless Atlas gains >= 1.0 pp at some cost
# <= 5% of mean job runtime (the PR 9 acceptance bar).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_defrag_fig6.json}"
BENCH="$BUILD_DIR/bench/bench_fig6_utilization"
INSPECT="$BUILD_DIR/examples/trace_inspect"
[ -x "$BENCH" ] || { echo "missing $BENCH (build first)" >&2; exit 1; }

ATLAS_JOBS="${ATLAS_JOBS:-3000}"
SYNTH_JOBS="${SYNTH_JOBS:-2000}"
COSTS="${COSTS:-30 60 120 240}"

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

mean_runtime() {  # trace jobs
  "$INSPECT" --trace "$1" --jobs "$2" --export "$WORK/mr.swf" > /dev/null
  awk '!/^;/ {s+=$4; n++} END {printf "%.6g", s/n}' "$WORK/mr.swf"
}

run_cell() {  # trace jobs tag extra-flags...
  local trace="$1" jobs="$2" tag="$3"
  shift 3
  echo "== $trace ($jobs jobs): $tag ==" >&2
  "$BENCH" --traces "$trace" --jobs "$jobs" --json-out "$WORK/$trace.$tag.json" \
    "$@" > /dev/null
}

for spec in "Atlas:$ATLAS_JOBS" "Synth-48:$SYNTH_JOBS"; do
  trace="${spec%%:*}"
  jobs="${spec##*:}"
  mean_runtime "$trace" "$jobs" > "$WORK/$trace.mean_runtime"
  run_cell "$trace" "$jobs" off
  for cost in $COSTS; do
    run_cell "$trace" "$jobs" "on$cost" --defrag --migration-cost "$cost"
  done
done

python3 - "$WORK" "$OUT" "$ATLAS_JOBS" "$SYNTH_JOBS" "$COSTS" <<'PY'
import json, sys

work, out, atlas_jobs, synth_jobs, costs = sys.argv[1:6]
costs = [float(c) for c in costs.split()]
traces = {"Atlas": int(atlas_jobs), "Synth-48": int(synth_jobs)}

def load(trace, tag):
    with open(f"{work}/{trace}.{tag}.json") as f:
        return json.load(f)

def jigsaw_util(doc, trace):
    for row in doc["rows"]:
        if row["Trace"] == trace:
            return row["Jigsaw"]
    raise SystemExit(f"no Jigsaw row for {trace}")

artifact = {"name": "defrag_fig6_sweep", "runs": [], "headline": []}
ok = False
for trace, jobs in traces.items():
    mean_rt = float(open(f"{work}/{trace}.mean_runtime").read())
    off = load(trace, "off")
    off_util = jigsaw_util(off, trace)
    artifact["runs"].append(
        {"trace": trace, "jobs": jobs, "defrag": False,
         "mean_job_runtime_s": mean_rt, "result": off})
    for cost in costs:
        on = load(trace, f"on{cost:g}")
        on_util = jigsaw_util(on, trace)
        cell = next(c for c in on["cells"]
                    if c["trace"] == trace and c["scheme"] == "Jigsaw")
        head = {"trace": trace, "migration_cost_s": cost,
                "cost_over_mean_runtime": cost / mean_rt,
                "jigsaw_util_off_pct": off_util,
                "jigsaw_util_on_pct": on_util,
                "gain_pp": round(on_util - off_util, 6),
                "migrations": cell["migrations"],
                "head_unblocks": cell["head_unblocks"]}
        artifact["headline"].append(head)
        artifact["runs"].append(
            {"trace": trace, "jobs": jobs, "defrag": True,
             "migration_cost_s": cost, "mean_job_runtime_s": mean_rt,
             "result": on})
        if trace == "Atlas" and cost <= 0.05 * mean_rt \
                and on_util - off_util >= 1.0:
            ok = True

with open(out, "w") as f:
    json.dump(artifact, f, indent=1)
    f.write("\n")

for h in artifact["headline"]:
    print(f"{h['trace']:>8}  cost {h['migration_cost_s']:>6g}s "
          f"({100 * h['cost_over_mean_runtime']:.2f}% of mean runtime)  "
          f"Jigsaw {h['jigsaw_util_off_pct']:.1f} -> {h['jigsaw_util_on_pct']:.1f} "
          f"({h['gain_pp']:+.1f} pp, {h['migrations']} migrations)")
if not ok:
    raise SystemExit(
        "FAIL: Atlas Jigsaw gain < 1.0 pp at every cost <= 5% of mean runtime")
print(f"headline OK -> {out}")
PY
