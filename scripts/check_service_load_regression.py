#!/usr/bin/env python3
"""Compare a fresh bench_service_load JSON against the committed baseline.

Checks the aggregate (non-".s<k>") rows that appear in both files:

  * submits/sec must not drop below (1 - tolerance) x baseline,
  * ack p999 latency must not exceed (1 + 2 x tolerance) x baseline
    (latency tails are noisier than throughput, hence the wider band),
  * the run shape must match: same submit count, zero rejections, same
    shard layout — a silently smaller run must never read as "fast".

Per-shard rows (trace names ending ".s<k>") are informational only:
they split the same wall interval, so their noise is the aggregate's
noise amplified by the shard count.

The default tolerance is 0.5 (50%), deliberately generous: the bench
measures end-to-end service throughput on a shared CI runner, which is
far noisier than the allocator microbenches.

Usage: check_service_load_regression.py BASELINE.json FRESH.json [TOL]
"""

import json
import sys


def aggregate_rows(path):
    """{trace: row} for rows that aren't per-shard splits."""
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        trace = row.get("trace")
        if trace is None:
            sys.exit(f"{path}: row without a 'trace' key: {row}")
        base, dot, suffix = trace.rpartition(".")
        if base and dot and suffix.startswith("s") and suffix[1:].isdigit():
            continue  # per-shard split row
        rows[trace] = row
    if not rows:
        sys.exit(f"{path}: no aggregate rows")
    return rows


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    baseline = aggregate_rows(sys.argv[1])
    fresh = aggregate_rows(sys.argv[2])
    tolerance = float(sys.argv[3]) if len(sys.argv) > 3 else 0.5

    missing = [t for t in baseline if t not in fresh]
    if missing:
        sys.exit("fresh results are incomplete; missing aggregate rows: "
                 + ", ".join(sorted(missing)))

    width = max(len("trace"), *(len(t) for t in baseline))
    header = (f"{'trace':<{width}}  {'metric':<15}  {'baseline':>12}  "
              f"{'fresh':>12}  {'ratio':>7}  verdict")
    print(header)
    print("-" * len(header))

    failures = []
    for trace in sorted(baseline):
        base, new = baseline[trace], fresh[trace]

        # Shape first: a changed run is not comparable, fail loudly.
        for key in ("submits", "shards"):
            if base.get(key) != new.get(key):
                failures.append(f"{trace}: '{key}' changed "
                                f"({base.get(key)!r} -> {new.get(key)!r})")
        if new.get("rejected", 0) != 0:
            failures.append(f"{trace}: fresh run rejected "
                            f"{new['rejected']} submits")

        checks = [
            ("submits/sec", float(base["submits.per.sec"]),
             float(new["submits.per.sec"]), "floor", 1.0 - tolerance),
            ("ack p999 (us)", float(base["ack.p999.us"]),
             float(new["ack.p999.us"]), "ceiling", 1.0 + 2.0 * tolerance),
        ]
        for name, b, n, kind, bound in checks:
            if b <= 0.0:
                print(f"{trace:<{width}}  {name:<15}  {b:>12.1f}  "
                      f"{n:>12.1f}  {'-':>7}  skipped (zero baseline)")
                continue
            ratio = n / b
            ok = ratio >= bound if kind == "floor" else ratio <= bound
            verdict = "ok" if ok else "REGRESSED"
            print(f"{trace:<{width}}  {name:<15}  {b:>12.1f}  {n:>12.1f}  "
                  f"{ratio:>6.2f}x  {verdict}")
            if not ok:
                failures.append(f"{trace}: {name} {ratio:.2f}x of baseline "
                                f"(bound {bound:.2f}x)")

    for trace in sorted(set(fresh) - set(baseline)):
        print(f"note: trace '{trace}' is new (not in baseline), not checked")

    if failures:
        sys.exit("service-load regression:\n  " + "\n  ".join(failures))
    print("no service-load regressions")


if __name__ == "__main__":
    main()
