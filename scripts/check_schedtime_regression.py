#!/usr/bin/env python3
"""Compare a fresh bench_table3_schedtime JSON against the committed baseline.

Fails (exit 1) if any scheme's mean scheduling time per job regressed by
more than the tolerance (default 25%, generous to absorb runner noise)
on any trace column present in both files. Columns ending in ".sd"
(sample stddev) and the "Approach" key are ignored.

Usage: check_schedtime_regression.py BASELINE.json FRESH.json [TOLERANCE]
"""

import json
import sys


def scheme_means(doc):
    means = {}
    for row in doc["rows"]:
        scheme = row["Approach"]
        for key, value in row.items():
            if key == "Approach" or key.endswith(".sd"):
                continue
            means[(scheme, key)] = float(value)
    return means


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    with open(sys.argv[1]) as f:
        baseline = scheme_means(json.load(f))
    with open(sys.argv[2]) as f:
        fresh = scheme_means(json.load(f))
    tolerance = float(sys.argv[3]) if len(sys.argv) > 3 else 0.25

    if not baseline:
        sys.exit("baseline has no rows")
    failures = []
    for key in sorted(baseline):
        if key not in fresh or baseline[key] <= 0.0:
            continue
        ratio = fresh[key] / baseline[key]
        verdict = "ok" if ratio <= 1.0 + tolerance else "REGRESSED"
        print(f"{key[0]:>8} / {key[1]}: baseline {baseline[key]:.3e}s  "
              f"fresh {fresh[key]:.3e}s  x{ratio:.2f}  {verdict}")
        if verdict != "ok":
            failures.append(key)
    if failures:
        sys.exit(f"mean sched-time regression >{tolerance:.0%} on: "
                 + ", ".join(f"{s}/{t}" for s, t in failures))
    print("no scheduling-time regressions")


if __name__ == "__main__":
    main()
