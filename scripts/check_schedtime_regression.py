#!/usr/bin/env python3
"""Compare a fresh bench_table3_schedtime JSON against the committed baseline.

Fails (exit 1) if any scheme's mean scheduling time per job regressed by
more than the tolerance (default 25%, generous to absorb runner noise)
on any trace column present in both files, or if a scheme/trace cell
present in the baseline is missing from the fresh run (a silently
dropped row must never read as "no regression"). Columns ending in
".sd" (sample stddev) and the "Approach" key are ignored.

Prints a per-scheme diff table: one row per (scheme, trace) cell with
the baseline and fresh means, the ratio, and an ok/REGRESSED verdict.
Schemes only present in the fresh run are reported as notes.

Usage: check_schedtime_regression.py BASELINE.json FRESH.json [TOLERANCE]
"""

import json
import sys


def scheme_means(path):
    """{scheme: {trace: mean_seconds}} from a bench --json-out file."""
    with open(path) as f:
        doc = json.load(f)
    means = {}
    for row in doc.get("rows", []):
        if "Approach" not in row:
            sys.exit(f"{path}: row without an 'Approach' key: {row}")
        scheme = row["Approach"]
        cells = {}
        for key, value in row.items():
            if key == "Approach" or key.endswith(".sd"):
                continue
            try:
                cells[key] = float(value)
            except ValueError:
                sys.exit(f"{path}: non-numeric cell {scheme}/{key}: "
                         f"{value!r}")
        means[scheme] = cells
    if not means:
        sys.exit(f"{path}: no rows")
    return means


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    baseline = scheme_means(sys.argv[1])
    fresh = scheme_means(sys.argv[2])
    tolerance = float(sys.argv[3]) if len(sys.argv) > 3 else 0.25

    # A scheme or trace cell that vanished from the fresh run is an
    # error in its own right, reported before any ratio math.
    missing = []
    for scheme, cells in sorted(baseline.items()):
        if scheme not in fresh:
            missing.append(f"scheme '{scheme}' missing from fresh results")
            continue
        for trace in sorted(cells):
            if trace not in fresh[scheme]:
                missing.append(f"cell {scheme}/{trace} missing from "
                               "fresh results")
    if missing:
        sys.exit("fresh results are incomplete:\n  " + "\n  ".join(missing))

    scheme_w = max(len("scheme"), *(len(s) for s in baseline))
    trace_w = max(len("trace"),
                  *(len(t) for cells in baseline.values() for t in cells))
    header = (f"{'scheme':<{scheme_w}}  {'trace':<{trace_w}}  "
              f"{'baseline':>12}  {'fresh':>12}  {'ratio':>7}  verdict")
    print(header)
    print("-" * len(header))

    failures = []
    for scheme in sorted(baseline):
        for trace in sorted(baseline[scheme]):
            base = baseline[scheme][trace]
            new = fresh[scheme][trace]
            if base <= 0.0:
                print(f"{scheme:<{scheme_w}}  {trace:<{trace_w}}  "
                      f"{base:>12.3e}  {new:>12.3e}  {'-':>7}  skipped "
                      "(zero baseline)")
                continue
            ratio = new / base
            verdict = "ok" if ratio <= 1.0 + tolerance else "REGRESSED"
            print(f"{scheme:<{scheme_w}}  {trace:<{trace_w}}  "
                  f"{base:>12.3e}  {new:>12.3e}  {ratio:>6.2f}x  {verdict}")
            if verdict != "ok":
                failures.append((scheme, trace))

    for scheme in sorted(set(fresh) - set(baseline)):
        print(f"note: scheme '{scheme}' is new (not in baseline), "
              "not checked")

    if failures:
        sys.exit(f"mean sched-time regression >{tolerance:.0%} on: "
                 + ", ".join(f"{s}/{t}" for s, t in failures))
    print("no scheduling-time regressions")


if __name__ == "__main__":
    main()
